// Package punch implements the paper's contribution: hole punching
// for UDP (§3) and TCP (§4) with a rendezvous server, plus the
// companion techniques — relaying (§2.2), connection reversal (§2.3),
// and the sequential TCP variant (§4.5).
//
// A Client owns one UDP socket (enough for S and any number of peers,
// §4.2) and one TCP local port shared — via SO_REUSEADDR semantics —
// by the registration connection to S, a listener, and all outgoing
// connection attempts (§4.1, Figure 7).
//
// The package is deliberately lock-free and single-threaded: all
// state changes happen inside the owning transport's serialized
// context (the simulation event loop, or the real-socket transport's
// dispatch loop — see natpunch/transport's concurrency contract), so
// the same engine runs unchanged over simulated and real networks.
package punch

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"natpunch/internal/host"
	"natpunch/internal/inet"
	"natpunch/internal/proto"
	"natpunch/transport"
)

// Errors surfaced through session callbacks.
var (
	ErrPunchTimeout  = errors.New("punch: hole punching timed out")
	ErrPeerUnknown   = errors.New("punch: peer not registered with rendezvous server")
	ErrNotRegistered = errors.New("punch: client not registered")
	ErrBusy          = errors.New("punch: attempt to this peer already in progress")
	ErrRegisterFail  = errors.New("punch: registration with rendezvous server failed")
	ErrAborted       = errors.New("punch: attempt aborted")
	// ErrTCPUnsupported is returned by the TCP surface when the
	// client's transport does not provide a full host stack (real-UDP
	// transports carry only the UDP procedures).
	ErrTCPUnsupported = errors.New("punch: transport does not support TCP hole punching")
)

// Method classifies how a session was ultimately established. The
// application cannot tell punched-through-NAT from hairpinned or
// genuinely public paths (§3.5 notes apps need no topology knowledge),
// so both are MethodPublic.
type Method uint8

// Session establishment methods.
const (
	MethodNone Method = iota
	// MethodPrivate: the peer's private endpoint answered first —
	// peers behind a common NAT (§3.3) or on one LAN.
	MethodPrivate
	// MethodPublic: the peer's public endpoint answered first — the
	// canonical punched path (§3.4), a hairpinned path (§3.5), or a
	// peer that was never behind a NAT.
	MethodPublic
	// MethodRelay: fell back to relaying through S (§2.2).
	MethodRelay
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodPrivate:
		return "private"
	case MethodPublic:
		return "public"
	case MethodRelay:
		return "relay"
	default:
		return "none"
	}
}

// Config tunes the punching procedures. Zero values take defaults.
type Config struct {
	// PunchInterval is the UDP probe retransmission interval.
	PunchInterval time.Duration // default 100ms
	// PunchTimeout bounds the whole punching attempt (both
	// protocols); §4.2 step 4's "application-defined maximum timeout
	// period".
	PunchTimeout time.Duration // default 10s
	// ConnectRetryInterval is the delay before re-trying a failed TCP
	// connect ("e.g., one second", §4.2 step 4).
	ConnectRetryInterval time.Duration // default 1s
	// AuthTimeout bounds how long an unauthenticated TCP stream may
	// stay open before being discarded (§4.2 step 5).
	AuthTimeout time.Duration // default 3s
	// KeepAliveInterval paces session and registration keep-alives
	// (§3.6).
	KeepAliveInterval time.Duration // default 15s
	// DeadAfter declares a UDP session dead when nothing has been
	// received for this long, triggering the Dead callback so the
	// application can re-punch on demand (§3.6).
	DeadAfter time.Duration // default 60s
	// Obfuscate one's-complements addresses inside message bodies
	// (§3.1) to defeat mangler NATs (§5.3).
	Obfuscate bool
	// RelayFallback enables falling back to relaying through S when
	// punching fails (§2.2: "a useful fall-back strategy if maximum
	// robustness is desired").
	RelayFallback bool
	// RelayServers lists standalone §2.2 relay services (package
	// natpunch/relayapi). When non-empty, relay-fallback sessions
	// route through one of these (chosen by a stable hash of the peer
	// pair, so both ends agree) instead of loading the rendezvous
	// server; the client registers and keep-alives with each so its
	// NAT keeps a mapping open toward them.
	RelayServers []inet.Endpoint
	// ServerFailoverAfter is how long the rendezvous server may stay
	// silent — no keep-alive acks, no replies of any kind — before a
	// client with a server pool re-homes to the next server in its
	// preference order. Default 3x KeepAliveInterval (under DeadAfter,
	// so relayed sessions can re-route before idle death).
	ServerFailoverAfter time.Duration
	// DisableRegistrationKeepAlive turns off the periodic keep-alive
	// to S (useful for tests that want the event queue to drain).
	// Server-pool failover detection rides the keep-alive clock, so
	// it is disabled too.
	DisableRegistrationKeepAlive bool
	// RelayFirst establishes sessions through the §2.2 relay the
	// moment the endpoint exchange (§3.2 step 2) completes — roughly
	// one rendezvous round-trip after the dial — while hole punching
	// continues in the background; a successful punch migrates the
	// live session onto the direct path with no datagram loss or
	// reordering (drain-then-switch, migrate.go). This is the
	// relay-first pattern the paper's production descendants (e.g.
	// IPFS's DCUtR) converged on. Implies PathUpgrade.
	RelayFirst bool
	// PathUpgrade enables mid-session path migration: relay->direct
	// upgrade when a background punch succeeds, direct->relay
	// failback — instead of terminal session death — when §3.6 idle
	// detection declares the direct path dead, and periodic
	// background re-punching while a session rides the relay.
	PathUpgrade bool
	// DrainTimeout bounds how long a migrating session's receiver
	// holds new-path datagrams while the old path's in-flight tail
	// drains (the tail may have been lost on real networks).
	DrainTimeout time.Duration // default 1s
	// RepunchEvery paces the background re-punch attempts of an
	// upgradable session riding the relay.
	RepunchEvery time.Duration // default 30s
}

func (c Config) withDefaults() Config {
	if c.PunchInterval == 0 {
		c.PunchInterval = 100 * time.Millisecond
	}
	if c.PunchTimeout == 0 {
		c.PunchTimeout = 10 * time.Second
	}
	if c.ConnectRetryInterval == 0 {
		c.ConnectRetryInterval = time.Second
	}
	if c.AuthTimeout == 0 {
		c.AuthTimeout = 3 * time.Second
	}
	if c.KeepAliveInterval == 0 {
		c.KeepAliveInterval = 15 * time.Second
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 60 * time.Second
	}
	if c.ServerFailoverAfter == 0 {
		// Below DeadAfter, so relay sessions riding the home server can
		// re-route to the new home before §3.6 declares them dead —
		// clamped when long keep-alive intervals would push 3x past it.
		c.ServerFailoverAfter = 3 * c.KeepAliveInterval
		if c.ServerFailoverAfter >= c.DeadAfter {
			c.ServerFailoverAfter = c.DeadAfter * 3 / 4
		}
	}
	if c.RelayFirst {
		c.PathUpgrade = true
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = time.Second
	}
	if c.RepunchEvery == 0 {
		c.RepunchEvery = 30 * time.Second
	}
	if len(c.RelayServers) > 1 {
		// Canonical order, so the pair-hash index lands both peers on
		// the same relay host no matter what order each listed the set
		// in. Copied: the caller's slice is not ours to reorder.
		sorted := append([]inet.Endpoint(nil), c.RelayServers...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
		c.RelayServers = sorted
	}
	return c
}

// Client is a hole-punching endpoint application.
type Client struct {
	tr transport.Transport
	// h is the simulated host when the transport provides one (the
	// SimHost capability); nil over real-socket transports, where the
	// TCP punching surface is unavailable.
	h      *host.Host
	name   string
	server inet.Endpoint
	cfg    Config
	obf    proto.Obfuscator

	// UDP state.
	udp           transport.UDPConn
	udpPublic     inet.Endpoint
	udpPrivate    inet.Endpoint
	udpRegistered bool
	udpRegDone    func(error)
	udpRegRetry   transport.Timer
	udpRegTries   int
	udpKeepAlive  transport.Timer

	// Server pool state: pool is the preference-ordered rendezvous
	// server list (pool[poolIdx] == server), lastServerSeen timestamps
	// the last traffic from the current server, and serverConfirmed
	// records whether the current server has acked a registration
	// since the last failover.
	pool            []inet.Endpoint
	poolIdx         int
	poolTried       int
	lastServerSeen  time.Duration
	serverConfirmed bool
	// Failovers counts server switches; OnServerSwitch, if set, fires
	// on each (old, new) re-homing.
	Failovers      int
	OnServerSwitch func(old, new inet.Endpoint)

	// relayReg tracks which standalone relay servers have acked our
	// registration (we keep re-registering until they do).
	relayReg map[inet.Endpoint]bool

	udpAttempts map[uint64]*udpAttempt
	udpSessions map[string]*UDPSession

	// InboundUDP supplies callbacks for sessions initiated by peers
	// (the forwarded connection request of §3.2 step 2 arrives without
	// any local Connect call).
	InboundUDP UDPCallbacks

	// OnRepunch, if set, is consulted before the engine launches a
	// plain §3 background re-punch for a live session (migrate.go);
	// returning true claims the attempt. The candidate-negotiation
	// engine (internal/ice) re-negotiates with the session's nonce
	// instead, so upgrades use the same machinery that established
	// the session.
	OnRepunch func(peer string, nonce uint64) bool

	// udpIntercept, if set, sees every decoded UDP message before the
	// client's own dispatch; returning true consumes the message. The
	// candidate-negotiation engine (internal/ice) claims its
	// negotiation and connectivity-check traffic this way.
	udpIntercept func(from inet.Endpoint, m *proto.Message) bool

	// TCP state (tcp.go).
	tcpState

	// Trace, if set, receives one line per notable protocol event.
	Trace func(format string, args ...any)

	closed bool
}

// NewClient creates a punching client for simulated host h,
// identified to the rendezvous server at server by name.
func NewClient(h *host.Host, name string, server inet.Endpoint, cfg Config) *Client {
	return NewClientOver(h.Transport(), name, server, cfg)
}

// NewClientOver creates a punching client over an arbitrary
// transport. The full engine — UDP punching, keep-alives, idle
// death, relay fallback, and (via internal/ice) candidate
// negotiation — is available on any transport; the TCP procedures
// additionally require the transport's SimHost capability.
func NewClientOver(tr transport.Transport, name string, server inet.Endpoint, cfg Config) *Client {
	c := &Client{
		tr:          tr,
		name:        name,
		server:      server,
		cfg:         cfg.withDefaults(),
		udpAttempts: make(map[uint64]*udpAttempt),
		udpSessions: make(map[string]*UDPSession),
	}
	if hp, ok := tr.(interface{ SimHost() *host.Host }); ok {
		c.h = hp.SimHost()
	}
	if c.cfg.Obfuscate {
		c.obf = proto.ObfuscatedEndpoints
	}
	c.tcpInit()
	return c
}

// Name returns the client's rendezvous identity.
func (c *Client) Name() string { return c.name }

// Host returns the underlying simulated host, or nil when the client
// runs over a transport without one.
func (c *Client) Host() *host.Host { return c.h }

// Transport returns the transport the client runs over.
func (c *Client) Transport() transport.Transport { return c.tr }

// after schedules fn on the client's transport.
func (c *Client) after(d time.Duration, fn func()) transport.Timer { return c.tr.After(d, fn) }

// now returns the transport clock.
func (c *Client) now() time.Duration { return c.tr.Now() }

// rand returns the transport's randomness source.
func (c *Client) rand() *rand.Rand { return c.tr.Rand() }

func (c *Client) tracef(format string, args ...any) {
	if c.Trace != nil {
		c.Trace("%s: %s", c.name, fmt.Sprintf(format, args...))
	}
}

// Close tears down sockets, sessions, and timers.
func (c *Client) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, s := range c.udpSessions {
		s.Close()
	}
	for _, a := range c.udpAttempts {
		a.stop()
	}
	if c.udpKeepAlive != nil {
		c.udpKeepAlive.Stop()
	}
	if c.udpRegRetry != nil {
		c.udpRegRetry.Stop()
	}
	if c.udp != nil {
		c.udp.Close()
	}
	c.tcpClose()
}

// nonce draws a session authentication nonce (§3.4: "a random nonce
// pre-arranged through S").
func (c *Client) nonce() uint64 {
	n := c.rand().Uint64()
	if n == 0 {
		n = 1
	}
	return n
}

// --- extension surface for the candidate-negotiation engine ---

// SetUDPIntercept installs fn ahead of the client's own UDP message
// dispatch; fn returning true consumes the message. One interceptor
// at a time (internal/ice installs itself here).
func (c *Client) SetUDPIntercept(fn func(from inet.Endpoint, m *proto.Message) bool) {
	c.udpIntercept = fn
}

// UDPIntercept returns the installed interceptor (nil when none), so
// test harnesses can chain fault-injection filters in front of it.
func (c *Client) UDPIntercept() func(from inet.Endpoint, m *proto.Message) bool {
	return c.udpIntercept
}

// Server returns the current rendezvous server's endpoint (the pool
// head, until failover re-homes the client).
func (c *Client) Server() inet.Endpoint { return c.server }

// SetServerPool installs a preference-ordered rendezvous server pool
// (see rendezvous.Preference for the stable ordering clients and
// servers agree on): the client registers with the head and fails
// over down the list — wrapping around — when its current server goes
// silent for ServerFailoverAfter. Call before RegisterUDP.
func (c *Client) SetServerPool(eps []inet.Endpoint) {
	if len(eps) == 0 {
		return
	}
	c.pool = append([]inet.Endpoint(nil), eps...)
	c.poolIdx = 0
	c.server = c.pool[0]
}

// ServerPool returns the installed pool (nil for single-server
// clients).
func (c *Client) ServerPool() []inet.Endpoint {
	return append([]inet.Endpoint(nil), c.pool...)
}

// relayRoute picks where a relay-fallback session's traffic goes: a
// standalone relay server chosen by a stable hash of the unordered
// peer pair (so both ends pick the same one), or — dynamically — the
// client's current rendezvous server, which survives failover because
// it is re-resolved on every send.
func (c *Client) relayRoute(peer string) (ep inet.Endpoint, dynamic bool) {
	if len(c.cfg.RelayServers) == 0 {
		return c.server, true
	}
	a, b := c.name, peer
	if b < a {
		a, b = b, a
	}
	h := fnv.New64a()
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	return c.cfg.RelayServers[h.Sum64()%uint64(len(c.cfg.RelayServers))], false
}

// RelayVia reports which server would carry a relay-fallback session
// with peer (the candidate endpoint the ICE engine nominates for the
// §2.2 floor).
func (c *Client) RelayVia(peer string) inet.Endpoint {
	ep, _ := c.relayRoute(peer)
	return ep
}

// Closed reports whether the client has been closed.
func (c *Client) Closed() bool { return c.closed }

// Config returns the client's effective (defaulted) configuration.
func (c *Client) Config() Config { return c.cfg }

// NextNonce draws a fresh session nonce from the deterministic
// simulation source, for negotiations conducted outside ConnectUDP.
func (c *Client) NextNonce() uint64 { return c.nonce() }

// SendUDPMessage encodes and transmits m on the client's UDP socket,
// applying the client's obfuscation setting. to may be a peer
// candidate endpoint or the rendezvous server.
func (c *Client) SendUDPMessage(to inet.Endpoint, m *proto.Message) error {
	if c.udp == nil {
		return ErrNotRegistered
	}
	return c.udp.SendTo(to, proto.Encode(m, c.obf))
}

// AdoptUDPSession installs an externally negotiated session — the
// nomination step of the candidate engine. The session joins the
// client's table (so data, keep-alives, §3.6 idle death, and re-acks
// for late probes all work exactly as for natively punched sessions)
// and any previous session with the peer is closed first. The caller
// fires its own establishment callbacks.
func (c *Client) AdoptUDPSession(peer string, remote inet.Endpoint, via Method, nonce uint64, cb UDPCallbacks) *UDPSession {
	if prev := c.udpSessions[peer]; prev != nil {
		prev.Close()
	}
	s := &UDPSession{c: c, Peer: peer, Remote: remote, Via: via, Nonce: nonce, cb: cb}
	if via == MethodRelay {
		s.relayVia, s.relayDynamic = c.relayRoute(peer)
	}
	now := c.now()
	s.lastRecvT, s.lastDirectRecvT, s.lastRepunch = now, now, now
	c.udpSessions[peer] = s
	s.scheduleKeepAlive()
	c.tracef("udp session with %s adopted at %s (%s)", peer, remote, via)
	return s
}

// AbortUDP cancels an in-flight punching attempt we initiated toward
// peer without firing its callbacks — the release path for
// context-cancelled dials. It reports whether an attempt was
// cancelled. Responder-side attempts (the peer dialing us, §3.2 step
// 2's forwarded request) and established sessions are not affected:
// cancelling our dial must not kill the peer's crossing dial.
func (c *Client) AbortUDP(peer string) bool {
	aborted := false
	for n, a := range c.udpAttempts {
		if a.peer == peer && a.requester && !a.done {
			a.stop()
			delete(c.udpAttempts, n)
			aborted = true
		}
	}
	if aborted {
		c.tracef("udp attempt to %s aborted", peer)
	}
	return aborted
}

// PendingUDPAttempts counts in-flight punching attempts — the
// accounting hook that cancellation tests recount against.
func (c *Client) PendingUDPAttempts() int { return len(c.udpAttempts) }

// UDPSessionCount counts live UDP sessions.
func (c *Client) UDPSessionCount() int { return len(c.udpSessions) }
