package punch_test

import (
	"encoding/binary"
	"testing"
	"time"

	"natpunch/internal/inet"
	"natpunch/internal/nat"
	"natpunch/internal/proto"
	"natpunch/internal/punch"
)

// migrateCfg shrinks the engine's clocks so migration lifecycles fit
// in seconds of simulated time.
func migrateCfg() punch.Config {
	return punch.Config{
		KeepAliveInterval: time.Second,
		DeadAfter:         3 * time.Second,
		PunchTimeout:      2 * time.Second,
		RepunchEvery:      5 * time.Second,
		RelayFallback:     true,
		PathUpgrade:       true,
	}
}

func TestRelayFirstUpgrade(t *testing.T) {
	// DCUtR-style connect: the session is usable on the relay about
	// one rendezvous round-trip after the dial, then migrates to the
	// punched direct path in the background — same session object,
	// same nonce, no re-establishment.
	cfg := migrateCfg()
	cfg.RelayFirst = true
	d := newDuo(t, 1, nat.Cone(), nat.Cone(), cfg)
	d.registerUDP(t)

	var sa, sb *punch.UDPSession
	var aChanges, bChanges int
	d.b.InboundUDP = punch.UDPCallbacks{
		Established: func(s *punch.UDPSession) { sb = s },
		PathChanged: func(s *punch.UDPSession, old, new punch.Method) { bChanges++ },
	}
	start := d.Net.Sched.Now()
	var established time.Duration
	d.a.ConnectUDP("bob", punch.UDPCallbacks{
		Established: func(s *punch.UDPSession) {
			sa = s
			established = d.Net.Sched.Now() - start
		},
		PathChanged: func(s *punch.UDPSession, old, new punch.Method) { aChanges++ },
		Failed:      func(peer string, err error) { t.Fatalf("punch failed: %v", err) },
	})
	d.runUntil(t, 10*time.Second, func() bool { return sa != nil && sb != nil })

	if sa.Via != punch.MethodRelay {
		t.Fatalf("relay-first dial established via %v, want relay", sa.Via)
	}
	// The relay path is ready after roughly one rendezvous round-trip
	// — long before a punch could complete, and strictly less than a
	// single probe interval.
	if established > 100*time.Millisecond {
		t.Errorf("relay-first establish took %v, want ~1 server RTT", established)
	}

	first := sa
	d.runUntil(t, 10*time.Second, func() bool {
		return sa.Via == punch.MethodPublic && sb.Via == punch.MethodPublic
	})
	if sa != first {
		t.Error("upgrade replaced the session object instead of migrating it")
	}
	if aChanges == 0 || bChanges == 0 {
		t.Errorf("PathChanged fired %d/%d times, want at least once per side", aChanges, bChanges)
	}
	if sa.Remote != d.b.PublicUDP() {
		t.Errorf("A migrated to %v, want B's public %v", sa.Remote, d.b.PublicUDP())
	}
	if d.a.PendingUDPAttempts() != 0 || d.b.PendingUDPAttempts() != 0 {
		t.Errorf("attempts leaked after upgrade: %d/%d",
			d.a.PendingUDPAttempts(), d.b.PendingUDPAttempts())
	}
}

func TestRelayFirstStreamContinuity(t *testing.T) {
	// The acceptance bar for the cutover: a datagram stream running
	// across the relay->direct migration arrives complete and in
	// order — the drain-then-switch protocol holds overtaking
	// new-path datagrams until the relayed tail lands.
	cfg := migrateCfg()
	cfg.RelayFirst = true
	d := newDuo(t, 7, nat.Cone(), nat.Cone(), cfg)
	d.registerUDP(t)

	var sa, sb *punch.UDPSession
	var got []uint32
	d.b.InboundUDP = punch.UDPCallbacks{
		Established: func(s *punch.UDPSession) { sb = s },
		Data: func(s *punch.UDPSession, b []byte) {
			got = append(got, binary.BigEndian.Uint32(b))
		},
	}
	d.a.ConnectUDP("bob", punch.UDPCallbacks{
		Established: func(s *punch.UDPSession) { sa = s },
		Failed:      func(peer string, err error) { t.Fatalf("punch failed: %v", err) },
	})
	d.runUntil(t, 10*time.Second, func() bool { return sa != nil })

	// Stream 100 sequenced datagrams at 10ms spacing: the migration
	// (punch ack ~a few hundred ms in) lands mid-stream.
	const total = 100
	var sent uint32
	var pump func()
	pump = func() {
		if sent >= total {
			return
		}
		sent++
		sa.Send(binary.BigEndian.AppendUint32(nil, sent))
		d.a.Transport().After(10*time.Millisecond, pump)
	}
	d.a.Transport().After(0, pump)

	d.runUntil(t, 30*time.Second, func() bool { return len(got) == total })
	if sa.Via != punch.MethodPublic || sa.PathChanges == 0 {
		t.Fatalf("stream never migrated (via %v, %d changes): cutover untested",
			sa.Via, sa.PathChanges)
	}
	for i, seq := range got {
		if seq != uint32(i+1) {
			t.Fatalf("datagram %d has seq %d: loss or reordering across the cutover", i, seq)
		}
	}
	if sb == nil || sb.RecvDatagrams != total {
		t.Fatalf("receiver session accounted %d datagrams, want %d", sb.RecvDatagrams, total)
	}
}

func TestRelayFirstSymmetricStaysOnRelay(t *testing.T) {
	// Symmetric<->symmetric cannot punch (§5.1 without port
	// prediction): the relay-first session must simply stay on the
	// relay when the background punch times out — silently, with no
	// Failed, no Dead, and no session replacement.
	cfg := migrateCfg()
	cfg.RelayFirst = true
	d := newDuo(t, 3, nat.Symmetric(), nat.Symmetric(), cfg)
	d.registerUDP(t)

	var sa, sb *punch.UDPSession
	d.b.InboundUDP = punch.UDPCallbacks{
		Established: func(s *punch.UDPSession) { sb = s },
	}
	d.a.ConnectUDP("bob", punch.UDPCallbacks{
		Established: func(s *punch.UDPSession) { sa = s },
		Failed:      func(peer string, err error) { t.Fatalf("punch failed: %v", err) },
	})
	d.runUntil(t, 10*time.Second, func() bool { return sa != nil && sb != nil })

	// Run well past the punch timeout; the sessions stay relayed and
	// still carry data.
	var echoed bool
	sb.OnData(func(s *punch.UDPSession, b []byte) { s.Send(b) })
	sa.OnData(func(s *punch.UDPSession, b []byte) { echoed = true })
	d.runUntil(t, cfg.PunchTimeout+time.Second, func() bool { return d.a.PendingUDPAttempts() == 0 })
	sa.Send([]byte("ping"))
	d.runUntil(t, 5*time.Second, func() bool { return echoed })
	if sa.Via != punch.MethodRelay || sb.Via != punch.MethodRelay {
		t.Errorf("via = %v/%v, want relay/relay", sa.Via, sb.Via)
	}
	if d.a.LookupUDPSession("bob") != sa {
		t.Error("session was replaced or closed instead of staying on the relay")
	}
}

func TestFailbackAndRepunchRecovery(t *testing.T) {
	// A live direct session whose path goes dark fails back to the
	// relay (instead of §3.6 terminal death), keeps carrying data
	// there, and — once the blackout lifts — wins the direct path
	// back through a background re-punch.
	d := newDuo(t, 5, nat.Cone(), nat.Cone(), migrateCfg())
	d.registerUDP(t)
	sa, sb := punchUDP(t, d)
	if sa.Via != punch.MethodPublic {
		t.Fatalf("setup: via %v, want public", sa.Via)
	}

	// Black out the direct path: both receivers drop every datagram
	// that did not come through the rendezvous/relay server.
	blocked := true
	drop := func(c *punch.Client) {
		c.SetUDPIntercept(func(from inet.Endpoint, m *proto.Message) bool {
			if !blocked {
				return false
			}
			switch m.Type {
			case proto.TypeData, proto.TypeKeepAlive, proto.TypePunch,
				proto.TypePunchAck, proto.TypeMigrate:
				return true
			}
			return false
		})
	}
	drop(d.a)
	drop(d.b)

	var deadFired bool
	sa.OnDead(func(*punch.UDPSession) { deadFired = true })
	sb.OnDead(func(*punch.UDPSession) { deadFired = true })

	d.runUntil(t, 30*time.Second, func() bool {
		return sa.Via == punch.MethodRelay && sb.Via == punch.MethodRelay
	})
	if deadFired {
		t.Fatal("session died; want failback to relay")
	}

	// Data still flows across the relay.
	var relayedEcho bool
	sb.OnData(func(s *punch.UDPSession, b []byte) { s.Send(b) })
	sa.OnData(func(s *punch.UDPSession, b []byte) { relayedEcho = true })
	sa.Send([]byte("still-there"))
	d.runUntil(t, 5*time.Second, func() bool { return relayedEcho })

	// Blackout lifts: the periodic re-punch recovers the direct path
	// for the same session objects.
	blocked = false
	d.runUntil(t, 30*time.Second, func() bool {
		return sa.Via == punch.MethodPublic && sb.Via == punch.MethodPublic
	})
	if deadFired {
		t.Error("session died during recovery")
	}
	if got := d.a.LookupUDPSession("bob"); got != sa {
		t.Error("recovery replaced alice's session instead of migrating it")
	}
	if got := d.b.LookupUDPSession("alice"); got != sb {
		t.Error("recovery replaced bob's session instead of migrating it")
	}
}
