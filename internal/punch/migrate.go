package punch

// Mid-session path migration (Config.PathUpgrade): the DCUtR-style
// lifecycle that production descendants of the paper converged on.
// A session is no longer pinned to the path that established it:
//
//   - relay -> direct *upgrade* when a background punch (plain §3 or
//     candidate negotiation) succeeds after a relay-first connect;
//   - direct -> relay *failback* when §3.6 idle detection declares
//     the direct path dead (NAT rebind, mobility, expired mapping),
//     instead of terminal session death;
//   - background *re-punch* — reusing the session's authenticating
//     nonce — to win the direct path back after a failback.
//
// The cutover is drain-then-switch: the migrating sender transmits a
// TypeMigrate marker on the NEW path carrying the last sequence
// number it sent on the old one, then switches. The receiver keeps
// delivering old-path datagrams (seq <= marker) and holds new-path
// datagrams (seq > marker) until the old path drains or DrainTimeout
// expires, then flushes the held datagrams in sequence order. The
// reorder buffer exists only inside the migration window, so normal
// UDP datagram semantics are untouched; because both paths preserve
// per-path ordering and the relay detour is strictly slower than the
// direct path it upgrades to, an in-order loss-free underlay yields a
// loss-free, reorder-free cutover.

import (
	"sort"

	"natpunch/internal/inet"
	"natpunch/internal/proto"
)

// heldDatagram buffers one new-path datagram during a drain window.
type heldDatagram struct {
	seq  uint32
	data []byte
}

// touchDirect records inbound traffic that arrived on the direct
// path. Relay receipts deliberately do not refresh lastDirectRecvT:
// a peer that failed back to the relay keeps the session alive, but
// must not mask that the direct path itself has gone dark — that
// masking is exactly what would leave our side transmitting into a
// black hole forever.
func (s *UDPSession) touchDirect() {
	s.lastRecvT = s.c.now()
	s.lastDirectRecvT = s.lastRecvT
}

// migrateTo switches the session's send path to (remote, via): the
// nomination half of the drain-then-switch cutover. The TypeMigrate
// marker travels on the NEW path before any data does, so the
// receiver learns the old path's final sequence number no later than
// the first post-switch datagram. Markers are only sent when the new
// path is direct: failback to the relay happens only once the old
// path is already declared dead, so there is nothing left to drain.
func (s *UDPSession) migrateTo(remote inet.Endpoint, via Method) {
	if s.closed || (via == s.Via && remote == s.Remote) {
		return
	}
	old := s.Via
	if via != MethodRelay {
		s.c.udp.SendTo(remote, proto.Encode(&proto.Message{
			Type: proto.TypeMigrate, From: s.c.name, Nonce: s.Nonce, Seq: s.seq,
		}, s.c.obf))
	}
	s.Remote = remote
	s.Via = via
	if via == MethodRelay {
		s.relayVia, s.relayDynamic = s.c.relayRoute(s.Peer)
	}
	// The new path earns a fresh §3.6 window on both idle clocks.
	s.lastRecvT = s.c.now()
	s.lastDirectRecvT = s.lastRecvT
	s.pathChanged(old)
}

// failback moves a direct session onto the §2.2 relay floor after
// idle detection declared the direct path dead, then re-punches in
// the background to win the direct path back. The relay path now
// carries the death watch: if the peer is truly gone it answers
// nothing there either, and the session dies one DeadAfter later.
func (s *UDPSession) failback() {
	old := s.Via
	s.Via = MethodRelay
	s.relayVia, s.relayDynamic = s.c.relayRoute(s.Peer)
	now := s.c.now()
	s.lastRecvT, s.lastDirectRecvT, s.lastRepunch = now, now, now
	s.pathChanged(old)
	s.c.repunch(s)
}

func (s *UDPSession) pathChanged(old Method) {
	s.PathChanges++
	s.c.tracef("udp session with %s migrated %s -> %s (%s)", s.Peer, old, s.Via, s.Remote)
	if s.cb.PathChanged != nil {
		s.cb.PathChanged(s, old, s.Via)
	}
}

// receive runs the drain-then-switch delivery discipline for one
// inbound data datagram (from either path; both carry the session's
// single sequence space).
func (s *UDPSession) receive(seq uint32, data []byte) {
	if s.draining && seq > s.drainTo {
		// New-path datagram overtaking the old path's in-flight tail:
		// hold it until the drain completes.
		s.held = append(s.held, heldDatagram{seq: seq, data: data})
		return
	}
	s.deliver(seq, data)
	if s.draining && s.recvSeq >= s.drainTo {
		s.finishDrain()
	}
}

func (s *UDPSession) deliver(seq uint32, data []byte) {
	if seq > s.recvSeq {
		s.recvSeq = seq
	}
	s.RecvDatagrams++
	if s.cb.Data != nil {
		s.cb.Data(s, data)
	}
}

// finishDrain flushes held new-path datagrams in sequence order and
// leaves the migration window.
func (s *UDPSession) finishDrain() {
	if !s.draining {
		return
	}
	s.draining = false
	if s.drainTimer != nil {
		s.drainTimer.Stop()
		s.drainTimer = nil
	}
	held := s.held
	s.held = nil
	sort.Slice(held, func(i, j int) bool { return held[i].seq < held[j].seq })
	for _, h := range held {
		s.deliver(h.seq, h.data)
	}
}

// handleMigrate processes the peer's drain marker: everything the
// peer sent on its old path carries seq <= m.Seq, so newer datagrams
// are held until that tail drains — or until DrainTimeout concedes
// the tail was lost (real networks drop datagrams; the window must
// not hold application data hostage).
func (c *Client) handleMigrate(from inet.Endpoint, m *proto.Message) {
	if m.From == c.name {
		return
	}
	s := c.udpSessions[m.From]
	if s == nil || s.closed || s.Nonce != m.Nonce {
		return // unauthenticated (§3.4)
	}
	s.touchDirect()
	if s.recvSeq >= m.Seq {
		return // the old path already drained; switch is immediate
	}
	s.draining = true
	if m.Seq > s.drainTo {
		s.drainTo = m.Seq
	}
	if s.drainTimer != nil {
		s.drainTimer.Stop()
	}
	s.drainTimer = c.after(c.cfg.DrainTimeout, s.finishDrain)
}

// repunch starts a background punching attempt that reuses the live
// session's authenticating nonce. The nonce reuse is what makes the
// attempt an upgrade rather than a second dial: whichever side's ack
// arrives finds the session by nonce and migrates it in place, and
// crossing re-punches from both sides unify on the shared nonce. The
// candidate-negotiation engine can claim the attempt via OnRepunch.
func (c *Client) repunch(s *UDPSession) {
	if c.closed || s.closed || !c.cfg.PathUpgrade || c.udp == nil {
		return
	}
	if a := c.udpAttempts[s.Nonce]; a != nil && !a.done {
		return // an attempt with this nonce is already in flight
	}
	if c.OnRepunch != nil && c.OnRepunch(s.Peer, s.Nonce) {
		return
	}
	a := &udpAttempt{c: c, peer: s.Peer, nonce: s.Nonce, requester: true, upgrade: true, cb: s.cb}
	c.udpAttempts[s.Nonce] = a
	a.deadline = c.after(c.cfg.PunchTimeout, func() { c.udpAttemptTimeout(a) })
	c.sendToServer(&proto.Message{
		Type: proto.TypeConnectRequest, From: c.name, Target: s.Peer, Nonce: s.Nonce,
	})
	c.tracef("udp re-punch -> %s (nonce %d)", s.Peer, s.Nonce)
}

// LookupUDPSession returns the live session with peer, or nil.
func (c *Client) LookupUDPSession(peer string) *UDPSession {
	return c.udpSessions[peer]
}

// MigrateUDPSession switches the live session with peer — identified
// by its authenticating nonce — onto a new path, preserving session
// identity, sequence space, stats, and callbacks: the nomination step
// of a background upgrade conducted outside the engine (internal/ice
// calls this instead of AdoptUDPSession when its negotiation was an
// upgrade of an existing session). Returns nil when no live session
// carries the nonce.
func (c *Client) MigrateUDPSession(peer string, remote inet.Endpoint, via Method, nonce uint64) *UDPSession {
	s := c.udpSessions[peer]
	if s == nil || s.closed || s.Nonce != nonce {
		return nil
	}
	s.migrateTo(remote, via)
	return s
}
