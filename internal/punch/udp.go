package punch

import (
	"time"

	"natpunch/internal/inet"
	"natpunch/internal/proto"
	"natpunch/transport"
)

// UDPCallbacks are the application-visible events of a UDP session.
type UDPCallbacks struct {
	// Established fires once the session is usable.
	Established func(*UDPSession)
	// Failed fires when punching fails and no fallback is available.
	Failed func(peer string, err error)
	// Data fires per received datagram.
	Data func(*UDPSession, []byte)
	// Dead fires when the session stops receiving traffic (NAT state
	// likely expired, §3.6); the application may re-punch on demand.
	Dead func(*UDPSession)
	// PathChanged fires when the live session migrates between paths
	// (relay->direct upgrade, direct->relay failback; Config
	// PathUpgrade). The session keeps its identity, nonce, sequence
	// space, and stats across the switch.
	PathChanged func(s *UDPSession, old, new Method)
}

// UDPSession is an established peer-to-peer UDP session.
type UDPSession struct {
	c    *Client
	Peer string
	// Remote is the locked-in endpoint (§3.2 step 3: "locks in
	// whichever endpoint first elicits a valid response").
	Remote inet.Endpoint
	// Via classifies the path (private / public / relay).
	Via Method
	// Nonce authenticates the session's traffic (§3.4).
	Nonce uint64
	// relayVia routes MethodRelay traffic: a fixed standalone relay
	// server, or — when relayDynamic — the client's *current*
	// rendezvous server, re-resolved per send so relayed sessions
	// survive server failover.
	relayVia     inet.Endpoint
	relayDynamic bool

	cb        UDPCallbacks
	seq       uint32
	lastRecvT time.Duration // transport-clock time of last inbound traffic
	keepTimer transport.Timer
	closed    bool

	// Path-migration state (Config.PathUpgrade; migrate.go).
	// lastDirectRecvT times inbound traffic that arrived on the
	// direct path specifically — relay receipts must not mask a dead
	// direct path. recvSeq is the highest delivered sequence number;
	// during a drain window (draining), new-path datagrams with
	// seq > drainTo wait in held until the old path's tail arrives or
	// drainTimer fires.
	lastDirectRecvT time.Duration
	lastRepunch     time.Duration
	recvSeq         uint32
	draining        bool
	drainTo         uint32
	drainTimer      transport.Timer
	held            []heldDatagram

	// Stats.
	SentDatagrams, RecvDatagrams uint64
	// PathChanges counts mid-session migrations (either direction).
	PathChanges uint64
}

// udpAttempt tracks one in-progress punching attempt (§3.2).
type udpAttempt struct {
	c         *Client
	peer      string
	nonce     uint64
	requester bool
	cb        UDPCallbacks
	// Candidate endpoints from S: the peer's public and private
	// endpoints (§3.2 step 2).
	pub, priv  inet.Endpoint
	gotDetails bool
	probeTimer transport.Timer
	deadline   transport.Timer
	done       bool
	// upgrade marks a background re-punch for a live session
	// (migrate.go): its failure modes are all silent — the session
	// simply stays on its current path.
	upgrade bool
}

func (a *udpAttempt) stop() {
	a.done = true
	if a.probeTimer != nil {
		a.probeTimer.Stop()
	}
	if a.deadline != nil {
		a.deadline.Stop()
	}
}

// BindUDP binds the client's UDP socket to localPort without yet
// registering with S. Most callers use RegisterUDP; binding alone
// supports adapters that must own a socket before the rendezvous
// server is reachable.
func (c *Client) BindUDP(localPort inet.Port) error {
	if c.udp != nil {
		return nil
	}
	s, err := c.tr.BindUDP(localPort)
	if err != nil {
		return err
	}
	c.udp = s
	c.udpPrivate = s.Local()
	s.OnRecv(c.handleUDPPacket)
	return nil
}

// RegisterUDP binds the client's UDP socket to localPort and
// registers with S — and with every configured standalone relay
// server — learning the public endpoint. done is invoked with nil on
// success or an error once the whole pool's retries are exhausted.
func (c *Client) RegisterUDP(localPort inet.Port, done func(error)) error {
	if err := c.BindUDP(localPort); err != nil {
		return err
	}
	c.udpRegDone = done
	c.udpRegTries = 0
	c.poolTried = 1
	if len(c.cfg.RelayServers) > 0 && c.relayReg == nil {
		c.relayReg = make(map[inet.Endpoint]bool, len(c.cfg.RelayServers))
		for _, ep := range c.cfg.RelayServers {
			c.relayReg[ep] = false
			c.udp.SendTo(ep, proto.Encode(&proto.Message{
				Type: proto.TypeRegister, From: c.name, Private: c.udpPrivate,
			}, c.obf))
		}
	}
	c.sendRegisterUDP()
	return nil
}

func (c *Client) sendRegisterUDP() {
	if c.udpRegistered || c.closed {
		return
	}
	c.udpRegTries++
	// With a pool, spend only two 1s tries per member before walking
	// on: a mostly dead pool must reach its survivor inside Open's
	// register timeout (2xN seconds for N members, vs 5s each).
	maxTries := 5
	if len(c.pool) > 1 {
		maxTries = 2
	}
	if c.udpRegTries > maxTries {
		// This pool member never answered; walk the preference order
		// before giving up entirely.
		if c.poolTried < len(c.pool) {
			c.poolTried++
			c.advanceServer()
			c.udpRegTries = 1
		} else {
			if c.udpRegDone != nil {
				c.udpRegDone(ErrRegisterFail)
			}
			return
		}
	}
	c.sendToServer(&proto.Message{
		Type: proto.TypeRegister, From: c.name, Private: c.udpPrivate,
	})
	c.udpRegRetry = c.after(time.Second, c.sendRegisterUDP)
}

// advanceServer re-homes the client at the next server in its
// preference order (wrapping around — a single-member pool retries
// the same server, which covers server restarts). Every re-homing —
// registration-time pool walking or runtime failover — counts in
// Failovers and fires OnServerSwitch, so the two signals agree.
func (c *Client) advanceServer() {
	old := c.server
	c.poolIdx = (c.poolIdx + 1) % len(c.pool)
	c.server = c.pool[c.poolIdx]
	c.serverConfirmed = false
	c.lastServerSeen = c.now() // grace period before the next verdict
	c.Failovers++
	c.tracef("rendezvous server %s unresponsive; re-homing to %s", old, c.server)
	if c.OnServerSwitch != nil {
		c.OnServerSwitch(old, c.server)
	}
}

// sendToServer transmits a message to S over UDP.
func (c *Client) sendToServer(m *proto.Message) {
	c.udp.SendTo(c.server, proto.Encode(m, c.obf))
}

// UDPRegistered reports whether UDP registration completed.
func (c *Client) UDPRegistered() bool { return c.udpRegistered }

// PublicUDP returns the client's public UDP endpoint as observed by S
// (§3.1).
func (c *Client) PublicUDP() inet.Endpoint { return c.udpPublic }

// PrivateUDP returns the client's own view of its UDP endpoint.
func (c *Client) PrivateUDP() inet.Endpoint { return c.udpPrivate }

// ConnectUDP starts hole punching toward peer (§3.2 step 1: "A asks S
// for help establishing a UDP session with B"). The outcome arrives
// via cb. The socket must be bound; normally the caller has
// registered first (RegisterUDP). A merely-bound client may still
// try — blocking adapters rely on that — but unless S already knows
// this client the request fails with ErrPeerUnknown (S's error reply
// blames the pair, not the missing registration).
func (c *Client) ConnectUDP(peer string, cb UDPCallbacks) {
	if c.udp == nil {
		if cb.Failed != nil {
			cb.Failed(peer, ErrNotRegistered)
		}
		return
	}
	if _, busy := c.udpSessions[peer]; busy {
		if cb.Failed != nil {
			cb.Failed(peer, ErrBusy)
		}
		return
	}
	n := c.nonce()
	a := &udpAttempt{c: c, peer: peer, nonce: n, requester: true, cb: cb}
	c.udpAttempts[n] = a
	a.deadline = c.after(c.cfg.PunchTimeout, func() { c.udpAttemptTimeout(a) })
	c.sendToServer(&proto.Message{
		Type: proto.TypeConnectRequest, From: c.name, Target: peer, Nonce: n,
	})
	c.tracef("udp connect -> %s (nonce %d)", peer, n)
}

// handleUDPPacket is the single dispatch point for everything on the
// client's one UDP socket: rendezvous replies, punch probes, session
// data, and stray traffic (§3.4 requires robust filtering of the
// latter).
func (c *Client) handleUDPPacket(from inet.Endpoint, payload []byte) {
	m, err := proto.Decode(payload)
	if err != nil {
		return // stray datagram (wrong host scenarios of §3.4)
	}
	if from == c.server {
		// Any traffic from the current rendezvous server proves it
		// alive; the keep-alive clock uses this for failover detection.
		c.lastServerSeen = c.now()
	}
	if c.udpIntercept != nil && c.udpIntercept(from, m) {
		return
	}
	switch m.Type {
	case proto.TypeRegisterOK:
		c.handleRegisterOK(from, m)
	case proto.TypeConnectDetails:
		c.handleConnectDetails(m)
	case proto.TypePunch:
		c.handlePunch(from, m)
	case proto.TypePunchAck:
		c.handlePunchAck(from, m)
	case proto.TypeData:
		c.handleSessionData(from, m)
	case proto.TypeKeepAlive:
		c.handleSessionKeepAlive(from, m)
	case proto.TypeRelayed:
		c.handleRelayed(m)
	case proto.TypeMigrate:
		c.handleMigrate(from, m)
	case proto.TypeError:
		c.handleServerError(m)
	}
}

func (c *Client) handleRegisterOK(from inet.Endpoint, m *proto.Message) {
	if ok, tracked := c.relayReg[from]; tracked {
		if !ok {
			c.relayReg[from] = true
			c.tracef("registered with relay server %s", from)
		}
		if from != c.server {
			return
		}
		// A relay host doubling as the home rendezvous server: fall
		// through so the ack also counts for the server registration.
	}
	if from != c.server {
		return // stale ack from a server we already failed away from
	}
	c.serverConfirmed = true
	if c.udpRegistered {
		// Keep-alive ack or re-registration: S's observation stays
		// authoritative for our public endpoint (§3.1) — the NAT may
		// have expired the old mapping and allocated a fresh one.
		c.udpPublic = m.Public
		return
	}
	c.udpRegistered = true
	c.udpPublic = m.Public
	if c.udpRegRetry != nil {
		c.udpRegRetry.Stop()
	}
	c.tracef("udp registered: private=%s public=%s", c.udpPrivate, c.udpPublic)
	if !c.cfg.DisableRegistrationKeepAlive {
		c.scheduleServerKeepAlive()
	}
	if c.udpRegDone != nil {
		c.udpRegDone(nil)
	}
}

// scheduleServerKeepAlive keeps the registration's NAT mapping alive
// (§3.6). The same clock drives server-pool failover: a server that
// has answered nothing — not even keep-alive acks — for
// ServerFailoverAfter is abandoned for the next pool member.
func (c *Client) scheduleServerKeepAlive() {
	c.udpKeepAlive = c.after(c.cfg.KeepAliveInterval, func() {
		if c.closed {
			return
		}
		switch {
		case len(c.pool) > 0 && c.now()-c.lastServerSeen > c.cfg.ServerFailoverAfter:
			c.advanceServer()
			c.sendToServer(&proto.Message{
				Type: proto.TypeRegister, From: c.name, Private: c.udpPrivate,
			})
		case !c.serverConfirmed && len(c.pool) > 0:
			// The last (re-)registration was lost; keep registering
			// until the server acks.
			c.sendToServer(&proto.Message{
				Type: proto.TypeRegister, From: c.name, Private: c.udpPrivate,
			})
		default:
			c.sendToServer(&proto.Message{Type: proto.TypeKeepAlive, From: c.name})
		}
		// Standalone relay servers get the same §3.6 maintenance, so
		// their registrations and our NAT mappings toward them stay
		// alive for the moment a relay fallback needs them.
		for _, ep := range c.cfg.RelayServers {
			m := &proto.Message{Type: proto.TypeKeepAlive, From: c.name}
			if !c.relayReg[ep] {
				m = &proto.Message{Type: proto.TypeRegister, From: c.name, Private: c.udpPrivate}
			}
			c.udp.SendTo(ep, proto.Encode(m, c.obf))
		}
		c.scheduleServerKeepAlive()
	})
}

// handleConnectDetails receives the endpoint exchange of §3.2 step 2
// — as the requester (reply to ConnectRequest) or as the target (the
// forwarded connection request). Both sides behave identically from
// here: start punching (§3.2 step 3).
func (c *Client) handleConnectDetails(m *proto.Message) {
	a := c.udpAttempts[m.Nonce]
	if a == nil {
		// We are the target side: adopt the inbound-session callbacks.
		a = &udpAttempt{c: c, peer: m.From, nonce: m.Nonce, cb: c.InboundUDP}
		c.udpAttempts[m.Nonce] = a
		a.deadline = c.after(c.cfg.PunchTimeout, func() { c.udpAttemptTimeout(a) })
	}
	if a.gotDetails || a.done {
		return
	}
	a.gotDetails = true
	a.pub, a.priv = m.Public, m.Private
	c.tracef("udp details for %s: public=%s private=%s", a.peer, a.pub, a.priv)
	if c.cfg.RelayFirst && c.udpSessions[a.peer] == nil {
		// DCUtR-style relay-first connect: the details round-trip
		// already proves both ends are registered with S, so the §2.2
		// relay path is usable right now. Establish through it — one
		// server round-trip after the dial — and keep punching in the
		// background; an ack migrates the live session onto the
		// direct path (drain-then-switch, migrate.go).
		s := &UDPSession{c: c, Peer: a.peer, Via: MethodRelay, Nonce: a.nonce, cb: a.cb}
		s.relayVia, s.relayDynamic = c.relayRoute(a.peer)
		now := c.now()
		s.lastRecvT, s.lastDirectRecvT, s.lastRepunch = now, now, now
		c.udpSessions[a.peer] = s
		s.scheduleKeepAlive()
		c.tracef("udp relay-first session with %s established", a.peer)
		if a.cb.Established != nil {
			a.cb.Established(s)
		}
	}
	c.probe(a)
}

// probe sends punch datagrams to both candidate endpoints and
// reschedules itself; "the order and timing of these messages are not
// critical as long as they are asynchronous" (§3.2).
func (c *Client) probe(a *udpAttempt) {
	if a.done || c.closed {
		return
	}
	msg := &proto.Message{Type: proto.TypePunch, From: c.name, Nonce: a.nonce}
	wire := proto.Encode(msg, c.obf)
	c.udp.SendTo(a.pub, wire)
	if a.priv != a.pub && !a.priv.IsZero() {
		c.udp.SendTo(a.priv, wire)
	}
	a.probeTimer = c.after(c.cfg.PunchInterval, func() { c.probe(a) })
}

// handlePunch answers an authenticated probe (§3.2 step 3). Probes
// carrying unknown nonces are stray traffic from the "wrong host"
// scenarios of §3.4 and are silently ignored — as are our own probes
// looping back, which happens when the peer's private address
// coincides with ours (both sides of the session share the nonce, so
// the name is the only self-detection signal).
func (c *Client) handlePunch(from inet.Endpoint, m *proto.Message) {
	if m.From == c.name {
		return
	}
	if a := c.udpAttempts[m.Nonce]; a != nil && !a.done {
		c.udp.SendTo(from, proto.Encode(&proto.Message{
			Type: proto.TypePunchAck, From: c.name, Nonce: m.Nonce,
		}, c.obf))
		// Triggered probe at the observed source: when the peer is
		// behind a symmetric NAT, its probes arrive from a mapping we
		// were never told about, and only a probe aimed at *that*
		// endpoint can elicit the ack that locks our side in.
		c.udp.SendTo(from, proto.Encode(&proto.Message{
			Type: proto.TypePunch, From: c.name, Nonce: m.Nonce,
		}, c.obf))
		return
	}
	// Re-ack probes for sessions already locked in, so a peer whose
	// ack was lost can still converge.
	for _, s := range c.udpSessions {
		if s.Nonce == m.Nonce && !s.closed {
			c.udp.SendTo(from, proto.Encode(&proto.Message{
				Type: proto.TypePunchAck, From: c.name, Nonce: m.Nonce,
			}, c.obf))
			return
		}
	}
}

// handlePunchAck locks in the first endpoint that elicited a valid
// response (§3.2 step 3).
func (c *Client) handlePunchAck(from inet.Endpoint, m *proto.Message) {
	if m.From == c.name {
		return
	}
	a := c.udpAttempts[m.Nonce]
	if a == nil || a.done {
		return
	}
	a.stop()
	delete(c.udpAttempts, m.Nonce)

	// Classify the locked endpoint. For an un-NATed peer public and
	// private coincide (§3.1); report that as public.
	via := MethodPublic
	if from == a.priv && a.priv != a.pub {
		via = MethodPrivate
	}
	if s := c.udpSessions[a.peer]; s != nil && !s.closed && s.Nonce == m.Nonce {
		// A live session already carries this nonce: the attempt was
		// a background upgrade (relay-first connect or re-punch), and
		// the ack nominates the direct path for the live session.
		s.migrateTo(from, via)
		return
	}
	s := &UDPSession{
		c: c, Peer: a.peer, Remote: from, Via: via, Nonce: m.Nonce, cb: a.cb,
	}
	now := c.now()
	s.lastRecvT, s.lastDirectRecvT, s.lastRepunch = now, now, now
	c.udpSessions[a.peer] = s
	s.scheduleKeepAlive()
	c.tracef("udp session with %s locked in at %s (%s)", a.peer, from, via)
	if a.cb.Established != nil {
		a.cb.Established(s)
	}
}

func (c *Client) udpAttemptTimeout(a *udpAttempt) {
	if a.done {
		return
	}
	a.stop()
	delete(c.udpAttempts, a.nonce)
	if s := c.udpSessions[a.peer]; s != nil && !s.closed && s.Nonce == a.nonce {
		// A live session already carries this nonce (relay-first
		// connect or background re-punch): the timed-out attempt was
		// an upgrade try, and the session simply stays where it is.
		c.tracef("udp upgrade punch to %s timed out; staying on %s", a.peer, s.Via)
		return
	}
	if a.upgrade {
		return // the session died while re-punching; nothing to fall back for
	}
	if c.cfg.RelayFallback {
		// §2.2: relaying always works as long as both clients can
		// reach S (or a configured standalone relay server).
		s := &UDPSession{c: c, Peer: a.peer, Via: MethodRelay, Nonce: a.nonce, cb: a.cb}
		s.relayVia, s.relayDynamic = c.relayRoute(a.peer)
		now := c.now()
		s.lastRecvT, s.lastDirectRecvT, s.lastRepunch = now, now, now
		c.udpSessions[a.peer] = s
		// Relay sessions get the same §3.6 maintenance as punched
		// ones: the timer sends keep-alives across the relay (empty
		// Seq-0 RelayTo) and fires Dead on idleness, which is what
		// tells the application its peer is gone.
		s.scheduleKeepAlive()
		c.tracef("udp punch to %s failed; falling back to relay", a.peer)
		if a.cb.Established != nil {
			a.cb.Established(s)
		}
		return
	}
	c.tracef("udp punch to %s timed out", a.peer)
	if a.cb.Failed != nil {
		a.cb.Failed(a.peer, ErrPunchTimeout)
	}
}

func (c *Client) handleServerError(m *proto.Message) {
	// S reports failures against the requester; fail all attempts
	// toward that peer.
	for n, a := range c.udpAttempts {
		if a.peer == m.From && a.requester && !a.gotDetails {
			a.stop()
			delete(c.udpAttempts, n)
			if a.upgrade {
				continue // silent: the live session stays on its path
			}
			if a.cb.Failed != nil {
				a.cb.Failed(a.peer, ErrPeerUnknown)
			}
		}
	}
	c.tcpServerError(m)
}

// --- established session traffic ---

func (c *Client) handleSessionData(from inet.Endpoint, m *proto.Message) {
	s := c.udpSessions[m.From]
	if s == nil {
		// With both sides punching, the peer's first data datagram can
		// overtake the punch-ack that would lock in our side (UDP
		// preserves no ordering across the crossing probes). A
		// correctly-nonced payload from the expected peer is at least
		// as strong evidence as an ack, so lock the session in with it
		// instead of dropping the data.
		a := c.udpAttempts[m.Nonce]
		if a == nil || a.done || a.peer != m.From || m.From == c.name {
			return // unauthenticated (§3.4)
		}
		a.stop()
		delete(c.udpAttempts, m.Nonce)
		via := MethodPublic
		if from == a.priv && a.priv != a.pub {
			via = MethodPrivate
		}
		s = &UDPSession{c: c, Peer: a.peer, Remote: from, Via: via, Nonce: m.Nonce, cb: a.cb}
		now := c.now()
		s.lastRecvT, s.lastDirectRecvT, s.lastRepunch = now, now, now
		c.udpSessions[a.peer] = s
		s.scheduleKeepAlive()
		c.tracef("udp session with %s locked in by early data at %s (%s)", a.peer, from, via)
		if a.cb.Established != nil {
			a.cb.Established(s)
		}
	}
	if s.closed || s.Nonce != m.Nonce {
		return // unauthenticated (§3.4)
	}
	s.touchDirect()
	if c.cfg.PathUpgrade {
		if s.Via == MethodRelay {
			// Correctly-nonced data arriving directly means the peer
			// has already migrated — and, since our punch-ack is what
			// let it, that both directions of the direct path work.
			// Migrate without waiting for our own ack (which may have
			// crossed with this datagram, or been lost).
			if a := c.udpAttempts[m.Nonce]; a != nil && !a.done && a.peer == m.From {
				a.stop()
				delete(c.udpAttempts, m.Nonce)
				via := MethodPublic
				if from == a.priv && a.priv != a.pub {
					via = MethodPrivate
				}
				s.migrateTo(from, via)
			}
		} else if from != s.Remote {
			// The peer's NAT rebound mid-session: its traffic now
			// arrives from a fresh mapping. The nonce authenticates it
			// (§3.4), so follow the peer to its new endpoint — the
			// QUIC-style connection-migration move.
			c.tracef("udp session with %s followed rebind %s -> %s", s.Peer, s.Remote, from)
			s.Remote = from
		}
	}
	s.receive(m.Seq, m.Data)
}

func (c *Client) handleSessionKeepAlive(from inet.Endpoint, m *proto.Message) {
	if s := c.udpSessions[m.From]; s != nil && s.Nonce == m.Nonce {
		s.touchDirect()
	}
}

func (c *Client) handleRelayed(m *proto.Message) {
	s := c.udpSessions[m.From]
	if s == nil || (s.Via != MethodRelay && !c.cfg.PathUpgrade) {
		// Relayed data can also arrive for TCP relay sessions.
		c.tcpHandleRelayed(m)
		return
	}
	// With PathUpgrade, relayed traffic is accepted even while our
	// side still rides the direct path: the peer may have failed back
	// before we noticed the direct path die, and its data must not be
	// dropped in the gap. Note touch, not touchDirect — relay receipts
	// keep the session alive without masking direct-path death.
	s.touch()
	if m.Seq == 0 && len(m.Data) == 0 {
		return // §3.6 keep-alive across the relay; not application data
	}
	s.receive(m.Seq, m.Data)
}

// OnData replaces the session's data callback (convenient when the
// session object is first seen in the Established callback).
func (s *UDPSession) OnData(fn func(*UDPSession, []byte)) { s.cb.Data = fn }

// OnDead replaces the session's dead-session callback.
func (s *UDPSession) OnDead(fn func(*UDPSession)) { s.cb.Dead = fn }

// OnPathChange replaces the session's path-migration callback.
func (s *UDPSession) OnPathChange(fn func(s *UDPSession, old, new Method)) { s.cb.PathChanged = fn }

// Send transmits a datagram on the session (directly, or via S for
// relay sessions).
func (s *UDPSession) Send(data []byte) error {
	if s.closed {
		return ErrNotRegistered
	}
	s.seq++
	s.SentDatagrams++
	if s.Via == MethodRelay {
		return s.c.udp.SendTo(s.relayTarget(), proto.Encode(&proto.Message{
			Type: proto.TypeRelayTo, From: s.c.name, Target: s.Peer,
			Seq: s.seq, Data: data,
		}, s.c.obf))
	}
	return s.c.udp.SendTo(s.Remote, proto.Encode(&proto.Message{
		Type: proto.TypeData, From: s.c.name, Nonce: s.Nonce,
		Seq: s.seq, Data: data,
	}, s.c.obf))
}

// Close tears the session down locally.
func (s *UDPSession) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.keepTimer != nil {
		s.keepTimer.Stop()
	}
	if s.drainTimer != nil {
		s.drainTimer.Stop()
		s.drainTimer = nil
	}
	s.held = nil
	if s.c.udpSessions[s.Peer] == s {
		delete(s.c.udpSessions, s.Peer)
	}
}

func (s *UDPSession) touch() { s.lastRecvT = s.c.now() }

// relayTarget resolves where this relay session's traffic goes right
// now: the fixed standalone relay server it was nominated onto, or
// the client's current rendezvous server (re-resolved per send, so
// relayed sessions ride through server failover).
func (s *UDPSession) relayTarget() inet.Endpoint {
	if s.relayDynamic || s.relayVia.IsZero() {
		return s.c.server
	}
	return s.relayVia
}

// scheduleKeepAlive sends periodic keep-alives so the NATs' per-
// session timers do not expire (§3.6), and watches for session death.
func (s *UDPSession) scheduleKeepAlive() {
	s.keepTimer = s.c.after(s.c.cfg.KeepAliveInterval, func() {
		if s.closed || s.c.closed {
			return
		}
		now := s.c.now()
		// With PathUpgrade, a direct session whose path goes dark
		// fails back to the relay instead of dying: §3.6 idle
		// detection picks the *path* verdict, and only the relay
		// floor going silent too is terminal.
		upgradable := s.c.cfg.PathUpgrade && s.Via != MethodRelay
		if now-s.lastRecvT > s.c.cfg.DeadAfter && !upgradable {
			// §3.6: detect that the session no longer works; the
			// application re-runs hole punching on demand.
			s.Close()
			if s.cb.Dead != nil {
				s.cb.Dead(s)
			}
			return
		}
		if upgradable && now-s.lastDirectRecvT > s.c.cfg.DeadAfter {
			s.failback()
		}
		if s.Via == MethodRelay {
			// §3.6 applies to relayed sessions too: an empty RelayTo
			// (Seq 0) refreshes both ends' NAT state and idle clocks
			// without surfacing as application data.
			s.c.udp.SendTo(s.relayTarget(), proto.Encode(&proto.Message{
				Type: proto.TypeRelayTo, From: s.c.name, Target: s.Peer,
			}, s.c.obf))
			if s.c.cfg.PathUpgrade && now-s.lastRepunch >= s.c.cfg.RepunchEvery {
				// Periodically try to win a direct path (back): a
				// temporary block may have lifted, or the NAT may
				// have rebound onto workable mappings.
				s.lastRepunch = now
				s.c.repunch(s)
			}
		} else {
			s.c.udp.SendTo(s.Remote, proto.Encode(&proto.Message{
				Type: proto.TypeKeepAlive, From: s.c.name, Nonce: s.Nonce,
			}, s.c.obf))
		}
		s.scheduleKeepAlive()
	})
}
