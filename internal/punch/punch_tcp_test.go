package punch_test

import (
	"testing"
	"time"

	"natpunch/internal/host"
	"natpunch/internal/inet"
	"natpunch/internal/nat"
	"natpunch/internal/punch"
	"natpunch/internal/rendezvous"
	"natpunch/internal/topo"
)

// punchTCP runs a full parallel TCP punch from alice to bob.
func punchTCP(t *testing.T, d *duo) (sa, sb *punch.TCPSession) {
	t.Helper()
	d.b.InboundTCP = punch.TCPCallbacks{
		Established: func(s *punch.TCPSession) { sb = s },
	}
	d.a.ConnectTCP("bob", punch.TCPCallbacks{
		Established: func(s *punch.TCPSession) { sa = s },
		Failed:      func(peer string, err error) { t.Fatalf("tcp punch failed: %v", err) },
	})
	d.runUntil(t, 60*time.Second, func() bool { return sa != nil && sb != nil })
	return sa, sb
}

func exchange(t *testing.T, d *duo, sa, sb *punch.TCPSession) {
	t.Helper()
	var aGot, bGot string
	sa.OnData(func(_ *punch.TCPSession, p []byte) { aGot = string(p) })
	sb.OnData(func(_ *punch.TCPSession, p []byte) { bGot = string(p) })
	if err := sa.Send([]byte("from A")); err != nil {
		t.Fatal(err)
	}
	if err := sb.Send([]byte("from B")); err != nil {
		t.Fatal(err)
	}
	d.runUntil(t, 10*time.Second, func() bool { return aGot != "" && bGot != "" })
	if bGot != "from A" || aGot != "from B" {
		t.Fatalf("aGot=%q bGot=%q", aGot, bGot)
	}
}

func TestTCPPunchDifferentNATs(t *testing.T) {
	// §4.2 across two well-behaved (SYN-dropping) cone NATs.
	d := newDuo(t, 1, nat.Cone(), nat.Cone(), punch.Config{})
	d.registerTCP(t)
	if d.a.PublicTCP().Addr != d.NATA.PublicAddr() {
		t.Errorf("A public TCP = %v", d.a.PublicTCP())
	}
	sa, sb := punchTCP(t, d)
	if sa.Via != punch.MethodPublic || sb.Via != punch.MethodPublic {
		t.Errorf("via = %v/%v", sa.Via, sb.Via)
	}
	exchange(t, d, sa, sb)
	// Orderly teardown.
	sa.Close()
	d.runUntil(t, 30*time.Second, func() bool { return sb.Conn.State().String() != "ESTABLISHED" })
}

func TestTCPPunchThroughRSTNATs(t *testing.T) {
	// §5.2: NATs that reject unsolicited SYNs with RSTs make punching
	// slower ("transient errors") but not fatal — the clients retry.
	d := newDuo(t, 1, nat.RSTCone(), nat.RSTCone(), punch.Config{
		PunchTimeout: 30 * time.Second,
	})
	d.registerTCP(t)
	sa, sb := punchTCP(t, d)
	exchange(t, d, sa, sb)
}

func TestTCPPunchBothLinuxFlavor(t *testing.T) {
	// §4.3/§4.4 second behavior on both ends: with symmetric timing
	// the SYNs cross, both connects fail with address-in-use, and both
	// applications receive working streams via accept(). The topo
	// builder uses BSD hosts, so build a dedicated topology with
	// Linux-flavored clients.
	in := topo.NewInternet(3)
	core := in.CoreRealm()
	s := core.AddHost("S", "18.181.0.31", host.BSDStyle)
	realmA := core.AddSite("NAT-A", nat.Cone(), "155.99.25.11", "10.0.0.0/24")
	realmB := core.AddSite("NAT-B", nat.Cone(), "138.76.29.7", "10.1.1.0/24")
	hostA := realmA.AddHost("A", "10.0.0.1", host.LinuxStyle)
	hostB := realmB.AddHost("B", "10.1.1.3", host.LinuxStyle)
	srv2, err := rendezvous.New(s, serverPort, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := punch.NewClient(hostA, "alice", srv2.Endpoint(), punch.Config{})
	b := punch.NewClient(hostB, "bob", srv2.Endpoint(), punch.Config{})
	a.RegisterTCP(4321, nil)
	b.RegisterTCP(4321, nil)
	runUntil(t, in, 10*time.Second, func() bool { return a.TCPRegistered() && b.TCPRegistered() })

	var sa, sb *punch.TCPSession
	b.InboundTCP = punch.TCPCallbacks{Established: func(s *punch.TCPSession) { sb = s }}
	a.ConnectTCP("bob", punch.TCPCallbacks{
		Established: func(s *punch.TCPSession) { sa = s },
	})
	runUntil(t, in, 60*time.Second, func() bool { return sa != nil && sb != nil })

	// The paper: "the application running on each client nevertheless
	// receives a new, working peer-to-peer TCP stream socket via
	// accept()".
	if !sa.Accepted || !sb.Accepted {
		t.Errorf("accepted = %v/%v, want true/true on Linux flavor", sa.Accepted, sb.Accepted)
	}
	var bGot string
	sb.OnData(func(_ *punch.TCPSession, p []byte) { bGot = string(p) })
	sa.Send([]byte("magic"))
	runUntil(t, in, 10*time.Second, func() bool { return bGot == "magic" })
}

func TestTCPSequentialPunch(t *testing.T) {
	// §4.5: the NatTrav-style sequential procedure.
	d := newDuo(t, 1, nat.Cone(), nat.Cone(), punch.Config{
		PunchTimeout: 30 * time.Second,
	})
	d.registerTCP(t)
	var sa, sb *punch.TCPSession
	d.b.InboundTCP = punch.TCPCallbacks{Established: func(s *punch.TCPSession) { sb = s }}
	d.a.ConnectTCPSequential("bob", punch.TCPCallbacks{
		Established: func(s *punch.TCPSession) { sa = s },
		Failed:      func(_ string, err error) { t.Fatalf("sequential failed: %v", err) },
	})
	d.runUntil(t, 60*time.Second, func() bool { return sa != nil && sb != nil })
	// A connected, B accepted — the asymmetric outcome of §4.5.
	if sa.Accepted || !sb.Accepted {
		t.Errorf("accepted = %v/%v, want false/true", sa.Accepted, sb.Accepted)
	}
	exchange(t, d, sa, sb)
}

func TestConnectionReversalTCP(t *testing.T) {
	// Figure 3: A public, B behind NAT. A cannot dial B; A requests a
	// reversal and B connects back.
	in := topo.NewInternet(1)
	core := in.CoreRealm()
	s := core.AddHost("S", "18.181.0.31", host.BSDStyle)
	hostA := core.AddHost("A", "155.99.25.80", host.BSDStyle)
	realmB := core.AddSite("NAT-B", nat.Cone(), "138.76.29.7", "10.1.1.0/24")
	hostB := realmB.AddHost("B", "10.1.1.3", host.BSDStyle)
	srv, err := rendezvous.New(s, serverPort, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := punch.NewClient(hostA, "alice", srv.Endpoint(), punch.Config{})
	b := punch.NewClient(hostB, "bob", srv.Endpoint(), punch.Config{})
	a.RegisterTCP(4321, nil)
	b.RegisterTCP(4321, nil)
	runUntil(t, in, 10*time.Second, func() bool { return a.TCPRegistered() && b.TCPRegistered() })

	var sa, sb *punch.TCPSession
	b.InboundTCP = punch.TCPCallbacks{Established: func(s *punch.TCPSession) { sb = s }}
	a.RequestReversal("bob", punch.TCPCallbacks{
		Established: func(s *punch.TCPSession) { sa = s },
	})
	runUntil(t, in, 30*time.Second, func() bool { return sa != nil && sb != nil })
	// A's stream arrived via accept (B dialed back); B's via connect.
	if !sa.Accepted || sb.Accepted {
		t.Errorf("accepted = %v/%v, want true/false", sa.Accepted, sb.Accepted)
	}
	if srv.Stats().ReversalRequests != 1 {
		t.Errorf("server reversal count = %d", srv.Stats().ReversalRequests)
	}
}

func TestTCPSymmetricFallsBackToRelay(t *testing.T) {
	d := newDuo(t, 1, nat.Symmetric(), nat.Symmetric(), punch.Config{
		PunchTimeout: 5 * time.Second, RelayFallback: true,
	})
	d.registerTCP(t)
	var sa *punch.TCPSession
	var bGot string
	d.b.InboundTCP = punch.TCPCallbacks{
		Data: func(_ *punch.TCPSession, p []byte) { bGot = string(p) },
	}
	d.a.ConnectTCP("bob", punch.TCPCallbacks{
		Established: func(s *punch.TCPSession) { sa = s },
	})
	d.runUntil(t, 60*time.Second, func() bool { return sa != nil })
	if sa.Via != punch.MethodRelay {
		t.Fatalf("via = %v, want relay", sa.Via)
	}
	sa.Send([]byte("tcp-relay"))
	d.runUntil(t, 10*time.Second, func() bool { return bGot != "" })
	if bGot != "tcp-relay" {
		t.Errorf("relayed = %q", bGot)
	}
}

func TestMultiLevelNATRequiresHairpin(t *testing.T) {
	// Figure 6. With hairpin at NAT C the punch succeeds via the
	// clients' global public endpoints; without it, punching fails
	// (§3.5: "the clients have no choice but to use their global
	// public addresses ... and rely on NAT C providing hairpin
	// translation").
	run := func(hairpin bool) (ok bool, via punch.Method) {
		behC := nat.Cone()
		behC.HairpinUDP = hairpin
		m := topo.NewMultiLevel(1, behC, nat.Cone(), nat.Cone())
		srv, err := rendezvous.New(m.S, serverPort, 0)
		if err != nil {
			t.Fatal(err)
		}
		a := punch.NewClient(m.A, "alice", srv.Endpoint(), punch.Config{PunchTimeout: 5 * time.Second})
		b := punch.NewClient(m.B, "bob", srv.Endpoint(), punch.Config{PunchTimeout: 5 * time.Second})
		a.RegisterUDP(4321, nil)
		b.RegisterUDP(4321, nil)
		runUntil(t, m.Internet, 10*time.Second, func() bool {
			return a.UDPRegistered() && b.UDPRegistered()
		})
		var sa *punch.UDPSession
		failed := false
		b.InboundUDP = punch.UDPCallbacks{}
		a.ConnectUDP("bob", punch.UDPCallbacks{
			Established: func(s *punch.UDPSession) { sa = s },
			Failed:      func(string, error) { failed = true },
		})
		deadline := m.Net.Sched.Now() + 30*time.Second
		m.Net.Sched.RunWhile(func() bool {
			return sa == nil && !failed && m.Net.Sched.Now() < deadline
		})
		if sa == nil {
			return false, punch.MethodNone
		}
		return true, sa.Via
	}

	if ok, _ := run(false); ok {
		t.Error("multi-level punch succeeded without hairpin at NAT C")
	}
	ok, via := run(true)
	if !ok {
		t.Fatal("multi-level punch failed despite hairpin at NAT C")
	}
	if via != punch.MethodPublic {
		t.Errorf("via = %v, want public (global endpoints through hairpin)", via)
	}
}

func TestKeepAliveSurvivesShortNATTimeout(t *testing.T) {
	// §3.6: a 20-second NAT with 15-second keep-alives keeps the
	// session alive for minutes.
	behA := nat.Cone()
	behA.UDPTimeout = 20 * time.Second
	behB := nat.Cone()
	behB.UDPTimeout = 20 * time.Second
	d := newDuo(t, 1, behA, behB, punch.Config{KeepAliveInterval: 8 * time.Second})
	d.registerUDP(t)
	sa, sb := punchUDP(t, d)

	var got string
	sb.OnData(func(_ *punch.UDPSession, p []byte) { got = string(p) })
	d.RunFor(2 * time.Minute) // many NAT timeouts' worth of idle time
	sa.Send([]byte("still-alive"))
	d.runUntil(t, 5*time.Second, func() bool { return got == "still-alive" })
}

func TestDeadSessionDetectionAndRepunch(t *testing.T) {
	// §3.6: "detecting when a UDP session no longer works, and
	// re-running the original hole punching procedure on demand."
	behA := nat.Cone()
	behA.UDPTimeout = 20 * time.Second
	d := newDuo(t, 1, behA, nat.Cone(), punch.Config{
		// Keep-alives too slow to preserve the mapping.
		KeepAliveInterval: 45 * time.Second,
		DeadAfter:         90 * time.Second,
	})
	d.registerUDP(t)
	sa, _ := punchUDP(t, d)
	dead := false
	sa.OnDead(func(*punch.UDPSession) { dead = true })
	d.runUntil(t, 10*time.Minute, func() bool { return dead })

	// Re-punch on demand succeeds.
	var sa2 *punch.UDPSession
	d.a.ConnectUDP("bob", punch.UDPCallbacks{
		Established: func(s *punch.UDPSession) { sa2 = s },
	})
	d.runUntil(t, 60*time.Second, func() bool { return sa2 != nil })
}

func TestManglerNATBreaksPlainCommonNATPunchObfuscationFixes(t *testing.T) {
	// §5.3 + §3.3: behind a common mangler NAT without hairpin, the
	// private endpoints exchanged through S are the only usable path.
	// A mangler NAT corrupts them in plain encodings; obfuscation
	// protects them.
	run := func(obfuscate bool) bool {
		b := nat.Mangler() // cone, mangles payload, no hairpin
		c := topo.NewCommonNAT(1, b)
		srv, err := rendezvous.New(c.S, serverPort, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg := punch.Config{Obfuscate: obfuscate, PunchTimeout: 5 * time.Second}
		a := punch.NewClient(c.A, "alice", srv.Endpoint(), cfg)
		bb := punch.NewClient(c.B, "bob", srv.Endpoint(), cfg)
		a.RegisterUDP(4321, nil)
		bb.RegisterUDP(4321, nil)
		runUntil(t, c.Internet, 10*time.Second, func() bool {
			return a.UDPRegistered() && bb.UDPRegistered()
		})
		var sa *punch.UDPSession
		failed := false
		bb.InboundUDP = punch.UDPCallbacks{}
		a.ConnectUDP("bob", punch.UDPCallbacks{
			Established: func(s *punch.UDPSession) { sa = s },
			Failed:      func(string, error) { failed = true },
		})
		deadline := c.Net.Sched.Now() + 30*time.Second
		c.Net.Sched.RunWhile(func() bool {
			return sa == nil && !failed && c.Net.Sched.Now() < deadline
		})
		return sa != nil && sa.Via == punch.MethodPrivate
	}
	if run(false) {
		t.Error("plain encoding survived a mangler NAT (should corrupt private endpoints)")
	}
	if !run(true) {
		t.Error("obfuscated encoding failed behind a mangler NAT")
	}
}

func TestStrayTrafficAuthentication(t *testing.T) {
	// §3.4: messages to B's private endpoint may reach a wrong host
	// with the same private address on A's network. That host (also
	// running a punch client) must not disturb A's session, and A must
	// ignore its traffic — the nonce authentication at work.
	in := topo.NewInternet(1)
	core := in.CoreRealm()
	s := core.AddHost("S", "18.181.0.31", host.BSDStyle)
	realmA := core.AddSite("NAT-A", nat.Cone(), "155.99.25.11", "10.1.1.0/24")
	realmB := core.AddSite("NAT-B", nat.Cone(), "138.76.29.7", "10.1.1.0/24")
	hostA := realmA.AddHost("A", "10.1.1.5", host.BSDStyle)
	// The evil twin shares B's private address but lives on A's LAN.
	twin := realmA.AddHost("twin", "10.1.1.3", host.BSDStyle)
	hostB := realmB.AddHost("B", "10.1.1.3", host.BSDStyle)

	srv, err := rendezvous.New(s, serverPort, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := punch.NewClient(hostA, "alice", srv.Endpoint(), punch.Config{})
	b := punch.NewClient(hostB, "bob", srv.Endpoint(), punch.Config{})
	tw := punch.NewClient(twin, "twin", srv.Endpoint(), punch.Config{})
	a.RegisterUDP(4321, nil)
	b.RegisterUDP(4321, nil)
	tw.RegisterUDP(4321, nil) // twin binds the same private port
	runUntil(t, in, 10*time.Second, func() bool {
		return a.UDPRegistered() && b.UDPRegistered() && tw.UDPRegistered()
	})

	var sa, sb *punch.UDPSession
	twinGot := 0
	tw.InboundUDP = punch.UDPCallbacks{
		Established: func(*punch.UDPSession) { twinGot++ },
	}
	b.InboundUDP = punch.UDPCallbacks{Established: func(s *punch.UDPSession) { sb = s }}
	a.ConnectUDP("bob", punch.UDPCallbacks{
		Established: func(s *punch.UDPSession) { sa = s },
	})
	runUntil(t, in, 30*time.Second, func() bool { return sa != nil && sb != nil })

	// A's probes to B's private endpoint reached the twin, but the
	// twin never authenticated, and A locked in B's public endpoint.
	if sa.Via != punch.MethodPublic {
		t.Errorf("via = %v, want public", sa.Via)
	}
	if sa.Remote.Addr != inet.MustParseAddr("138.76.29.7") {
		t.Errorf("A locked %v, want B's NAT", sa.Remote)
	}
	if twinGot != 0 {
		t.Error("twin established a session from stray probes")
	}
}
