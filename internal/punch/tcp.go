package punch

import (
	"errors"
	"time"

	"natpunch/internal/host"
	"natpunch/internal/inet"
	"natpunch/internal/proto"
	"natpunch/internal/tcp"
	"natpunch/transport"
)

// TCPCallbacks are the application-visible events of a TCP session.
type TCPCallbacks struct {
	Established func(*TCPSession)
	Failed      func(peer string, err error)
	Data        func(*TCPSession, []byte)
	Closed      func(*TCPSession)
}

// TCPSession is an established peer-to-peer TCP stream (or a relayed
// fallback). Messages are length-framed on the stream; Send/Data
// preserve message boundaries.
type TCPSession struct {
	c    *Client
	Peer string
	// Conn is the underlying stream; nil for relay sessions.
	Conn *tcp.Conn
	// Accepted reports whether the working socket arrived via
	// accept() rather than connect() — the §4.3 distinction the
	// application is told to ignore but the experiments report.
	Accepted bool
	Via      Method
	Nonce    uint64

	cb     TCPCallbacks
	dec    proto.StreamDecoder
	seq    uint32
	closed bool
}

// tcpState is the TCP half of a Client.
type tcpState struct {
	tcpLocalPort  inet.Port
	tcpListener   *host.TCPListener
	tcpServer     *tcp.Conn
	tcpServerDec  proto.StreamDecoder
	tcpPublic     inet.Endpoint
	tcpPrivate    inet.Endpoint
	tcpRegistered bool
	tcpRegDone    func(error)
	tcpKeepAlive  transport.Timer

	tcpAttempts map[uint64]*tcpAttempt
	tcpSessions map[string]*TCPSession

	// InboundTCP supplies callbacks for peer-initiated sessions.
	InboundTCP TCPCallbacks
}

func (c *Client) tcpInit() {
	c.tcpAttempts = make(map[uint64]*tcpAttempt)
	c.tcpSessions = make(map[string]*TCPSession)
}

func (c *Client) tcpClose() {
	for _, a := range c.tcpAttempts {
		a.stop(nil)
	}
	if c.tcpKeepAlive != nil {
		c.tcpKeepAlive.Stop()
	}
	if c.tcpListener != nil {
		c.tcpListener.Close()
	}
	if c.tcpServer != nil {
		c.tcpServer.Close()
	}
}

// tcpAttempt tracks one in-progress TCP punching attempt: the set of
// outstanding sockets of Figure 7 minus the S connection (which the
// Client owns), the retry timers of §4.2 step 4, and the auth state
// of step 5.
type tcpAttempt struct {
	c          *Client
	peer       string
	nonce      uint64
	requester  bool
	cb         TCPCallbacks
	pub, priv  inet.Endpoint
	gotDetails bool

	conns       map[*tcp.Conn]bool // outstanding unauthenticated conns
	retryTimers []transport.Timer
	deadline    transport.Timer
	sequential  bool
	done        bool
}

func (a *tcpAttempt) stop(winner *tcp.Conn) {
	a.done = true
	for _, t := range a.retryTimers {
		t.Stop()
	}
	if a.deadline != nil {
		a.deadline.Stop()
	}
	for conn := range a.conns {
		if conn != winner {
			conn.Abort()
		}
	}
	a.conns = nil
}

// RegisterTCP binds the client's TCP port (listener + registration
// connection to S, both with address reuse, §4.1) and registers. It
// requires a transport with the full simulated host stack; real-UDP
// transports return ErrTCPUnsupported.
func (c *Client) RegisterTCP(localPort inet.Port, done func(error)) error {
	if c.h == nil {
		return ErrTCPUnsupported
	}
	l, err := c.h.TCPListen(localPort, true, c.handleAccepted)
	if err != nil {
		return err
	}
	c.tcpListener = l
	c.tcpLocalPort = l.Port()
	c.tcpRegDone = done

	conn, err := c.h.TCPDial(c.server, host.DialOpts{LocalPort: c.tcpLocalPort, ReuseAddr: true}, tcp.Callbacks{
		Established: func(cn *tcp.Conn) {
			c.tcpPrivate = cn.Local()
			cn.Write(proto.AppendFrame(nil, &proto.Message{
				Type: proto.TypeRegister, From: c.name, Private: cn.Local(),
			}, c.obf))
		},
		Data: func(cn *tcp.Conn, p []byte) { c.handleServerStream(p) },
		Error: func(cn *tcp.Conn, err error) {
			if !c.tcpRegistered && c.tcpRegDone != nil {
				c.tcpRegDone(err)
			}
		},
	})
	if err != nil {
		l.Close()
		return err
	}
	c.tcpServer = conn
	return nil
}

// TCPRegistered reports whether TCP registration completed.
func (c *Client) TCPRegistered() bool { return c.tcpRegistered }

// PublicTCP returns the client's public TCP endpoint as observed by S.
func (c *Client) PublicTCP() inet.Endpoint { return c.tcpPublic }

// handleServerStream processes frames on the registration connection.
func (c *Client) handleServerStream(p []byte) {
	msgs, err := c.tcpServerDec.Feed(p)
	if err != nil {
		c.tcpServer.Abort()
		return
	}
	for _, m := range msgs {
		switch m.Type {
		case proto.TypeRegisterOK:
			if !c.tcpRegistered {
				c.tcpRegistered = true
				c.tcpPublic = m.Public
				c.tracef("tcp registered: private=%s public=%s", c.tcpPrivate, c.tcpPublic)
				if !c.cfg.DisableRegistrationKeepAlive {
					c.scheduleTCPServerKeepAlive()
				}
				if c.tcpRegDone != nil {
					c.tcpRegDone(nil)
				}
			}
		case proto.TypeConnectDetails:
			c.handleTCPDetails(m)
		case proto.TypeReverseRequest:
			c.handleReverseRequest(m)
		case proto.TypeSeqRequest:
			c.handleSeqRequest(m)
		case proto.TypeSeqGo:
			c.handleSeqGo(m)
		case proto.TypeRelayed:
			c.tcpHandleRelayed(m)
		case proto.TypeError:
			c.tcpServerError(m)
		}
	}
}

// scheduleTCPServerKeepAlive keeps the registration connection's NAT
// session alive (§3.6): without periodic traffic an idle NAT expires
// the TCP mapping and S can no longer signal this client.
func (c *Client) scheduleTCPServerKeepAlive() {
	c.tcpKeepAlive = c.after(c.cfg.KeepAliveInterval, func() {
		if c.closed || c.tcpServer == nil {
			return
		}
		c.tcpServer.Write(proto.AppendFrame(nil, &proto.Message{
			Type: proto.TypeKeepAlive, From: c.name,
		}, c.obf))
		c.scheduleTCPServerKeepAlive()
	})
}

// ConnectTCP starts parallel TCP hole punching toward peer (§4.2).
func (c *Client) ConnectTCP(peer string, cb TCPCallbacks) {
	if !c.tcpRegistered {
		if cb.Failed != nil {
			cb.Failed(peer, ErrNotRegistered)
		}
		return
	}
	if _, busy := c.tcpSessions[peer]; busy {
		if cb.Failed != nil {
			cb.Failed(peer, ErrBusy)
		}
		return
	}
	n := c.nonce()
	a := c.newTCPAttempt(peer, n, cb)
	a.requester = true
	// §4.2 step 1: ask S for help.
	c.tcpServer.Write(proto.AppendFrame(nil, &proto.Message{
		Type: proto.TypeConnectRequest, From: c.name, Target: peer, Nonce: n,
	}, c.obf))
	c.tracef("tcp connect -> %s (nonce %d)", peer, n)
}

func (c *Client) newTCPAttempt(peer string, nonce uint64, cb TCPCallbacks) *tcpAttempt {
	a := &tcpAttempt{
		c: c, peer: peer, nonce: nonce, cb: cb,
		conns: make(map[*tcp.Conn]bool),
	}
	c.tcpAttempts[nonce] = a
	a.deadline = c.after(c.cfg.PunchTimeout, func() { c.tcpAttemptTimeout(a) })
	return a
}

// handleTCPDetails implements §4.2 steps 2-3: on receiving the peer's
// endpoints, dial both of them from the registered local port while
// the listener keeps accepting.
func (c *Client) handleTCPDetails(m *proto.Message) {
	a := c.tcpAttempts[m.Nonce]
	if a == nil {
		a = c.newTCPAttempt(m.From, m.Nonce, c.InboundTCP)
	}
	if a.gotDetails || a.done {
		return
	}
	a.gotDetails = true
	a.pub, a.priv = m.Public, m.Private
	c.tracef("tcp details for %s: public=%s private=%s", a.peer, a.pub, a.priv)
	c.dialCandidate(a, a.pub)
	if a.priv != a.pub && !a.priv.IsZero() {
		c.dialCandidate(a, a.priv)
	}
}

// dialCandidate makes one asynchronous connect attempt toward ep from
// the shared local port, retrying transient failures after
// ConnectRetryInterval (§4.2 step 4).
func (c *Client) dialCandidate(a *tcpAttempt, ep inet.Endpoint) {
	if a.done || c.closed {
		return
	}
	retry := func() {
		if a.done {
			return
		}
		a.retryTimers = append(a.retryTimers, c.after(c.cfg.ConnectRetryInterval, func() {
			c.dialCandidate(a, ep)
		}))
	}
	conn, err := c.h.TCPDial(ep, host.DialOpts{LocalPort: c.tcpLocalPort, ReuseAddr: true}, tcp.Callbacks{
		Established: func(cn *tcp.Conn) {
			// Our side of §4.2 step 5: authenticate by sending the
			// session nonce as a hello.
			cn.Write(proto.AppendFrame(nil, &proto.Message{
				Type: proto.TypePunch, From: c.name, Nonce: a.nonce,
			}, c.obf))
		},
		Data: func(cn *tcp.Conn, p []byte) { c.attemptConnData(a, cn, p) },
		Error: func(cn *tcp.Conn, err error) {
			delete(a.conns, cn)
			switch {
			case errors.Is(err, tcp.ErrAddrInUse):
				// §4.3 second behavior: our connect lost to the listen
				// socket; the accepted socket carries the session.
				// Nothing to do.
			case errors.Is(err, tcp.ErrReset), errors.Is(err, tcp.ErrUnreachable), errors.Is(err, tcp.ErrTimeout):
				// §4.2 step 4: "simply re-tries that connection
				// attempt after a short delay".
				retry()
			}
		},
	})
	if err != nil {
		// Local bind conflict (a previous socket to the same candidate
		// is still closing); retry later.
		retry()
		return
	}
	a.conns[conn] = true
}

// attemptForRemote finds a pending attempt one of whose candidate
// endpoints matches ep.
func (c *Client) attemptForRemote(ep inet.Endpoint) *tcpAttempt {
	for _, a := range c.tcpAttempts {
		if !a.done && a.gotDetails && (a.pub == ep || a.priv == ep) {
			return a
		}
	}
	return nil
}

// handleAccepted runs for every connection delivered by the shared
// listener: punched streams, reverse connections, sequential-punch
// connections, or strays from wrong-host scenarios. The stream is
// authenticated by its first frame (§4.2 step 5).
//
// When both ends take the accept() path (both-Linux simultaneous
// open, §4.4), neither side has a surviving connect socket to speak
// first — so an accepted connection whose remote endpoint matches a
// pending attempt's candidates sends its own hello too.
func (c *Client) handleAccepted(conn *tcp.Conn) {
	dec := &proto.StreamDecoder{}
	authed := false
	authTimer := c.after(c.cfg.AuthTimeout, func() {
		if !authed {
			conn.Abort() // §4.2 step 5: close unauthenticated streams
		}
	})
	if a := c.attemptForRemote(conn.Remote()); a != nil {
		conn.Write(proto.AppendFrame(nil, &proto.Message{
			Type: proto.TypePunch, From: c.name, Nonce: a.nonce,
		}, c.obf))
	}
	conn.OnData(func(cn *tcp.Conn, p []byte) {
		if authed {
			return // session handler replaced this callback; raced data
		}
		msgs, err := dec.Feed(p)
		if err != nil {
			cn.Abort()
			return
		}
		for _, m := range msgs {
			if m.Type != proto.TypePunch || m.From == c.name {
				continue
			}
			a := c.tcpAttempts[m.Nonce]
			if a == nil || a.done {
				continue
			}
			authed = true
			authTimer.Stop()
			cn.Write(proto.AppendFrame(nil, &proto.Message{
				Type: proto.TypePunchAck, From: c.name, Nonce: m.Nonce,
			}, c.obf))
			c.win(a, cn, *dec)
			return
		}
	})
	conn.OnError(func(*tcp.Conn, error) { authTimer.Stop() })
	conn.OnClosed(func(*tcp.Conn) { authTimer.Stop() })
}

// attemptConnData handles frames on a connection we initiated, before
// it is authenticated.
func (c *Client) attemptConnData(a *tcpAttempt, cn *tcp.Conn, p []byte) {
	if a.done {
		return
	}
	dec := &proto.StreamDecoder{}
	msgs, err := dec.Feed(p)
	if err != nil {
		cn.Abort()
		delete(a.conns, cn)
		return
	}
	for _, m := range msgs {
		if m.From == c.name {
			continue // our own hello on a self-connected stream
		}
		switch m.Type {
		case proto.TypePunchAck:
			if m.Nonce == a.nonce {
				c.win(a, cn, *dec)
				return
			}
		case proto.TypePunch:
			// Both ends helloed on a crossed (simultaneous-open)
			// stream: acknowledge and adopt it.
			if m.Nonce == a.nonce {
				cn.Write(proto.AppendFrame(nil, &proto.Message{
					Type: proto.TypePunchAck, From: c.name, Nonce: a.nonce,
				}, c.obf))
				c.win(a, cn, *dec)
				return
			}
		}
	}
}

// win adopts conn as the session stream: "the clients use the first
// successfully authenticated TCP stream" (§4.2 step 5).
func (c *Client) win(a *tcpAttempt, conn *tcp.Conn, dec proto.StreamDecoder) {
	delete(a.conns, conn)
	a.stop(conn)
	delete(c.tcpAttempts, a.nonce)

	via := MethodPublic
	if conn.Remote() == a.priv && a.priv != a.pub {
		via = MethodPrivate
	}
	s := &TCPSession{
		c: c, Peer: a.peer, Conn: conn, Accepted: conn.Accepted,
		Via: via, Nonce: a.nonce, cb: a.cb, dec: dec,
	}
	c.tcpSessions[a.peer] = s
	conn.SetCallbacks(tcp.Callbacks{
		Data: func(cn *tcp.Conn, p []byte) { s.feed(p) },
		Closed: func(cn *tcp.Conn) {
			if !s.closed {
				s.closed = true
				delete(c.tcpSessions, s.Peer)
				if s.cb.Closed != nil {
					s.cb.Closed(s)
				}
			}
		},
	})
	c.tracef("tcp session with %s via %s (accepted=%v remote=%s)", a.peer, via, conn.Accepted, conn.Remote())
	if a.cb.Established != nil {
		a.cb.Established(s)
	}
}

func (c *Client) tcpAttemptTimeout(a *tcpAttempt) {
	if a.done {
		return
	}
	a.stop(nil)
	delete(c.tcpAttempts, a.nonce)
	if c.cfg.RelayFallback && c.tcpServer != nil {
		s := &TCPSession{c: c, Peer: a.peer, Via: MethodRelay, Nonce: a.nonce, cb: a.cb}
		c.tcpSessions[a.peer] = s
		c.tracef("tcp punch to %s failed; falling back to relay", a.peer)
		if a.cb.Established != nil {
			a.cb.Established(s)
		}
		return
	}
	c.tracef("tcp punch to %s timed out", a.peer)
	if a.cb.Failed != nil {
		a.cb.Failed(a.peer, ErrPunchTimeout)
	}
}

// AbortTCP cancels in-flight TCP punching attempts we initiated
// toward peer without firing their callbacks — the release path for
// context-cancelled dials. Responder-side attempts are untouched so a
// cancelled dial cannot kill the peer's crossing dial. It reports
// whether anything was cancelled.
func (c *Client) AbortTCP(peer string) bool {
	aborted := false
	for n, a := range c.tcpAttempts {
		if a.peer == peer && a.requester && !a.done {
			a.stop(nil)
			delete(c.tcpAttempts, n)
			aborted = true
		}
	}
	if aborted {
		c.tracef("tcp attempt to %s aborted", peer)
	}
	return aborted
}

// PendingTCPAttempts counts in-flight TCP punching attempts.
func (c *Client) PendingTCPAttempts() int { return len(c.tcpAttempts) }

func (c *Client) tcpServerError(m *proto.Message) {
	for n, a := range c.tcpAttempts {
		if a.peer == m.From && a.requester && !a.gotDetails {
			a.stop(nil)
			delete(c.tcpAttempts, n)
			if a.cb.Failed != nil {
				a.cb.Failed(a.peer, ErrPeerUnknown)
			}
		}
	}
}

// feed decodes session frames into Data callbacks.
func (s *TCPSession) feed(p []byte) {
	msgs, err := s.dec.Feed(p)
	if err != nil {
		s.Conn.Abort()
		return
	}
	for _, m := range msgs {
		switch m.Type {
		case proto.TypeData:
			if m.Nonce == s.Nonce && s.cb.Data != nil {
				s.cb.Data(s, m.Data)
			}
		case proto.TypePunch:
			// Peer's duplicate hello (its ack to us was in flight);
			// re-acknowledge.
			s.Conn.Write(proto.AppendFrame(nil, &proto.Message{
				Type: proto.TypePunchAck, From: s.c.name, Nonce: s.Nonce,
			}, s.c.obf))
		}
	}
}

// OnData replaces the session's data callback.
func (s *TCPSession) OnData(fn func(*TCPSession, []byte)) { s.cb.Data = fn }

// OnClosed replaces the session's closed callback.
func (s *TCPSession) OnClosed(fn func(*TCPSession)) { s.cb.Closed = fn }

// Send transmits one framed message on the session.
func (s *TCPSession) Send(data []byte) error {
	if s.closed {
		return tcp.ErrClosed
	}
	s.seq++
	m := &proto.Message{
		Type: proto.TypeData, From: s.c.name, Nonce: s.Nonce,
		Seq: s.seq, Data: data,
	}
	if s.Via == MethodRelay {
		m.Type = proto.TypeRelayTo
		m.Target = s.Peer
		return s.c.tcpServer.Write(proto.AppendFrame(nil, m, s.c.obf))
	}
	return s.Conn.Write(proto.AppendFrame(nil, m, s.c.obf))
}

// Close closes the session stream gracefully.
func (s *TCPSession) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.c.tcpSessions, s.Peer)
	if s.Conn != nil {
		s.Conn.Close()
	}
}

// tcpHandleRelayed delivers relayed data for TCP relay sessions.
func (c *Client) tcpHandleRelayed(m *proto.Message) {
	s := c.tcpSessions[m.From]
	if s == nil || s.Via != MethodRelay {
		return
	}
	if s.cb.Data != nil {
		s.cb.Data(s, m.Data)
	}
}

// --- connection reversal (§2.3) ---

// RequestReversal asks peer (behind a NAT) to connect back to this
// client, which must be directly reachable — the §2.3 technique for
// the "only one peer behind a NAT" topology.
func (c *Client) RequestReversal(peer string, cb TCPCallbacks) {
	if !c.tcpRegistered {
		if cb.Failed != nil {
			cb.Failed(peer, ErrNotRegistered)
		}
		return
	}
	n := c.nonce()
	c.newTCPAttempt(peer, n, cb) // waits for the inbound connection
	c.tcpServer.Write(proto.AppendFrame(nil, &proto.Message{
		Type: proto.TypeReverseRequest, From: c.name, Target: peer, Nonce: n,
	}, c.obf))
	c.tracef("reversal request -> %s (nonce %d)", peer, n)
}

// handleReverseRequest performs the reverse connection: dial the
// requester's public endpoint directly (it is reachable; that is the
// premise of §2.3).
func (c *Client) handleReverseRequest(m *proto.Message) {
	a := c.newTCPAttempt(m.From, m.Nonce, c.InboundTCP)
	a.gotDetails = true
	a.pub, a.priv = m.Public, m.Private
	c.tracef("reverse-connecting to %s at %s", m.From, m.Public)
	c.dialCandidate(a, a.pub)
	if a.priv != a.pub && !a.priv.IsZero() {
		c.dialCandidate(a, a.priv)
	}
}

// --- sequential hole punching (§4.5, NatTrav) ---

// SeqHoleDelay is how long the doomed connect is given to push at
// least one SYN through the NATs on its side (§4.5: "too little delay
// risks a lost SYN derailing the process").
const SeqHoleDelay = 500 * time.Millisecond

// ConnectTCPSequential runs the NatTrav-style sequential procedure
// (§4.5): (1) this client informs the peer via S; (2) the peer makes
// a doomed connect() that opens a hole in its NAT; (3) the peer
// listens and signals readiness; (4) this client connects.
func (c *Client) ConnectTCPSequential(peer string, cb TCPCallbacks) {
	if !c.tcpRegistered {
		if cb.Failed != nil {
			cb.Failed(peer, ErrNotRegistered)
		}
		return
	}
	n := c.nonce()
	a := c.newTCPAttempt(peer, n, cb)
	a.requester = true
	a.sequential = true
	c.tcpServer.Write(proto.AppendFrame(nil, &proto.Message{
		Type: proto.TypeSeqRequest, From: c.name, Target: peer, Nonce: n,
	}, c.obf))
	c.tracef("sequential connect -> %s (nonce %d)", peer, n)
}

// handleSeqRequest is the peer side: step 2's doomed connect, then
// step 3's listen + go-signal.
func (c *Client) handleSeqRequest(m *proto.Message) {
	a := c.newTCPAttempt(m.From, m.Nonce, c.InboundTCP)
	a.sequential = true
	a.gotDetails = true
	a.pub, a.priv = m.Public, m.Private

	// Step 2: the doomed connect toward the requester's public
	// endpoint opens an outbound hole in our NAT. We expect it to
	// fail (timeout or RST); its purpose is the hole.
	doomed, err := c.h.TCPDial(m.Public, host.DialOpts{LocalPort: c.tcpLocalPort, ReuseAddr: true}, tcp.Callbacks{})
	if err == nil {
		c.after(SeqHoleDelay, func() {
			doomed.Abort()
			if a.done {
				return
			}
			// Steps 3-4: we are listening (the shared listener); tell
			// the requester to connect.
			c.tcpServer.Write(proto.AppendFrame(nil, &proto.Message{
				Type: proto.TypeSeqGo, From: c.name, Target: a.peer, Nonce: a.nonce,
			}, c.obf))
			c.tracef("sequential: hole opened toward %s, signalling go", a.peer)
		})
	}
}

// handleSeqGo is the requester side of step 4: connect to the peer's
// now-holed public endpoint.
func (c *Client) handleSeqGo(m *proto.Message) {
	a := c.tcpAttempts[m.Nonce]
	if a == nil || a.done {
		return
	}
	a.gotDetails = true
	a.pub, a.priv = m.Public, m.Private
	c.tracef("sequential: go from %s, dialing %s", m.From, m.Public)
	c.dialCandidate(a, a.pub)
}
