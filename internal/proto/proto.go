// Package proto defines the wire protocol spoken between punching
// clients, the rendezvous server S, and relays: registration with
// private-endpoint reporting (§3.1), connection-request forwarding
// with public+private endpoint exchange (§3.2 steps 1-2), punch
// probes carrying authentication nonces (§3.4 requires applications
// to authenticate to filter stray traffic), keep-alives (§3.6),
// relaying (§2.2), and connection reversal (§2.3).
//
// Messages use a fixed binary encoding (type byte, then fixed fields,
// then length-prefixed strings). Endpoints can optionally be
// obfuscated by one's-complementing the address (§3.1/§5.3), which
// defeats NATs that blindly rewrite payload bytes resembling private
// IP addresses.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"natpunch/internal/inet"
)

// Type identifies a protocol message.
type Type uint8

// Message types.
const (
	// TypeRegister: client -> S. Carries the client's ID and its
	// private endpoint as the client itself observes it (§3.1).
	TypeRegister Type = iota + 1
	// TypeRegisterOK: S -> client. Echoes the client's public endpoint
	// as observed by S (the translated endpoint), so the client learns
	// its own public endpoint.
	TypeRegisterOK
	// TypeConnectRequest: client -> S. "A asks S for help establishing
	// a session with B" (§3.2 step 1). Carries the target's ID and the
	// session nonce A chose.
	TypeConnectRequest
	// TypeConnectDetails: S -> both clients (§3.2 step 2). Carries the
	// peer's ID, public and private endpoints, the session nonce, and
	// whether the receiver is the original requester.
	TypeConnectDetails
	// TypePunch: client -> peer candidate endpoint. The hole-punching
	// probe, authenticated by the session nonce (§3.4).
	TypePunch
	// TypePunchAck: reply to a punch probe; locking in the responding
	// endpoint (§3.2 step 3).
	TypePunchAck
	// TypeKeepAlive: client -> peer on an established session (§3.6).
	TypeKeepAlive
	// TypeRelayTo: client -> S, asking S to forward Data to Target
	// (§2.2 relaying fallback).
	TypeRelayTo
	// TypeRelayed: S -> client, forwarded relay payload.
	TypeRelayed
	// TypeReverseRequest: client -> S -> peer. Asks an un-NATed (or
	// already-reachable) peer to connect back (§2.3).
	TypeReverseRequest
	// TypeError: S -> client, request failed (unknown peer, ...).
	TypeError
	// TypeSeqRequest: sequential hole punching step 1 (§4.5, NatTrav):
	// A informs B via S of its desire to communicate without
	// simultaneously listening. Forwarded by S with A's endpoints.
	TypeSeqRequest
	// TypeSeqGo: sequential hole punching step 3->4: B has made its
	// doomed connect() (opening the hole in its NAT) and is now
	// listening; S signals A to connect. (NatTrav signals this by
	// closing TCP connections to S; an explicit message is
	// semantically equivalent and keeps the S connections reusable,
	// which §4.5 notes the parallel procedure enjoys.)
	TypeSeqGo
	// TypeData: application payload on an established punched session.
	TypeData
	// TypeNegotiate: client -> S. Like TypeConnectRequest, but opens a
	// full candidate negotiation (internal/ice): the requester
	// advertises its gathered candidates and S forwards them — with the
	// observed public endpoint substituted authoritatively (§3.1) — to
	// the target, while synthesizing the target's own candidate list
	// from its registration.
	TypeNegotiate
	// TypeNegotiateDetails: S -> both clients. The negotiation
	// counterpart of TypeConnectDetails: carries the peer's full
	// candidate list, the session nonce, and the requester flag.
	TypeNegotiateDetails
	// TypeFedHello: server -> server. Opens (or refreshes) a
	// federation link between two rendezvous servers: the receiver
	// records the sender — the datagram source — as a federation peer
	// and answers with its own hello if the sender was previously
	// unknown, then replays its locally homed registrations as
	// TypeFedRecord messages so the link starts synchronized.
	TypeFedHello
	// TypeFedRecord: server -> server. Replicates one locally homed
	// client registration (or its §3.6 keep-alive refresh) to a
	// federation peer: From is the client name, Public/Private are the
	// endpoint pair the home server recorded (§3.1), and the datagram
	// source identifies the home server. The receiver stores the
	// record as remote and restarts its TTL.
	TypeFedRecord
	// TypeFedForward: server -> server. Carries, in Data, the exact
	// wire bytes the receiving server must deliver to its locally
	// homed client Target. Federation needs this because a NATed
	// client is reachable only through the mapping it keeps open to
	// its *home* server — no other server's datagrams can traverse
	// that filter state (§3.1).
	TypeFedForward
	// TypeMigrate: client -> peer, sent on the *new* path during a
	// mid-session path migration (relay->direct upgrade or
	// direct->relay failback). From and Nonce authenticate it like any
	// session traffic (§3.4); Seq carries the last sequence number the
	// sender transmitted on the old path, so the receiver can drain
	// in-flight old-path datagrams (delivering everything with
	// seq <= Seq) before switching — the drain-then-switch cutover
	// that keeps migration loss- and reorder-free.
	TypeMigrate
	// TypeStream: one reliable-stream data frame (internal/stream),
	// carried inside a session datagram (TypeData/TypeRelayTo payload).
	// Nonce is the stream ID, Seq the byte offset of Data within the
	// stream, and Requester marks FIN: Data's last byte is the final
	// byte of the stream. Offsets live in the 32-bit circular space of
	// RFC 793 §3.3, compared with the stream engine's Seq* helpers.
	TypeStream
	// TypeStreamAck: cumulative acknowledgment for one stream. Nonce is
	// the stream ID and Seq the next byte offset the receiver expects
	// (everything below Seq arrived in order). Acks drive the sender's
	// RTT estimate and release its retransmission buffer.
	TypeStreamAck
	// TypeStreamWindow: flow-control credit. Nonce is the stream ID —
	// or zero for the session-level window — and Seq the absolute limit
	// offset (stream) or cumulative byte budget (session) the sender
	// may reach. A receiver re-advertises as the application consumes.
	TypeStreamWindow
	// TypeStreamReset: abrupt bidirectional stream termination. Nonce
	// is the stream ID; both directions stop, buffered data is dropped.
	TypeStreamReset
	// TypeStreamPing: session liveness/RTT probe. Seq is an echo token;
	// Requester false asks, true answers with the same token. The
	// round-trip seeds the retransmission timer on idle sessions.
	TypeStreamPing
)

// String names the message type.
func (t Type) String() string {
	names := map[Type]string{
		TypeRegister: "register", TypeRegisterOK: "register-ok",
		TypeConnectRequest: "connect-request", TypeConnectDetails: "connect-details",
		TypePunch: "punch", TypePunchAck: "punch-ack", TypeKeepAlive: "keep-alive",
		TypeRelayTo: "relay-to", TypeRelayed: "relayed",
		TypeReverseRequest: "reverse-request", TypeError: "error",
		TypeSeqRequest: "seq-request", TypeSeqGo: "seq-go", TypeData: "data",
		TypeNegotiate: "negotiate", TypeNegotiateDetails: "negotiate-details",
		TypeFedHello: "fed-hello", TypeFedRecord: "fed-record",
		TypeFedForward: "fed-forward", TypeMigrate: "migrate",
		TypeStream: "stream", TypeStreamAck: "stream-ack",
		TypeStreamWindow: "stream-window", TypeStreamReset: "stream-reset",
		TypeStreamPing: "stream-ping",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Message is the decoded form of every protocol message; unused
// fields are zero. One concrete struct keeps encode/decode total and
// easily property-testable.
type Message struct {
	Type Type
	// From and Target are client identities (names registered with S).
	From, Target string
	// Public and Private are the endpoint pair exchanged through S
	// (§3.2). In TypeRegister, Private is the sender's own view;
	// in TypeRegisterOK, Public is S's view of the sender.
	Public, Private inet.Endpoint
	// Nonce authenticates punch traffic for one session (§3.4).
	Nonce uint64
	// Requester marks the ConnectDetails copy sent to the original
	// requester (it dials; the other side also dials — both punch).
	Requester bool
	// Seq sequences keep-alives and data for loss accounting.
	Seq uint32
	// Data is relay or application payload.
	Data []byte
	// Candidates is the transport-address list exchanged during
	// candidate negotiation (TypeNegotiate/TypeNegotiateDetails). The
	// section is trailing and optional on the wire, so pre-negotiation
	// encodings still decode (as an empty list).
	Candidates []Candidate
}

// Candidate kind wire values. The semantics live in internal/ice;
// the wire layer only round-trips them.
const (
	// CandPrivate is a host (private-realm) transport address, the
	// client's own view of its endpoint (§3.1).
	CandPrivate uint8 = 1
	// CandPublic is the server-reflexive address: the client's public
	// endpoint as observed by S (§3.1).
	CandPublic uint8 = 2
	// CandHairpin marks a public candidate that can only work via
	// loopback translation on a shared upper NAT (§3.5): the peers'
	// public addresses coincide. Assigned by the checking side, but
	// legal on the wire.
	CandHairpin uint8 = 3
	// CandReflexive is a peer-reflexive address discovered when a
	// connectivity check arrives from an endpoint nobody advertised
	// (a symmetric NAT's fresh mapping, §5.1).
	CandReflexive uint8 = 4
	// CandRelay is the §2.2 relay path through S, the guaranteed floor.
	CandRelay uint8 = 5
)

// Candidate is one transport address advertised for negotiation.
type Candidate struct {
	// Kind is one of the Cand* wire values.
	Kind uint8
	// Priority orders checks, higher first. Advisory on the wire: the
	// checking side recomputes priorities locally so both agents pace
	// deterministically regardless of what the peer claims.
	Priority uint32
	// Endpoint is the transport address to check.
	Endpoint inet.Endpoint
}

// Errors returned by Decode.
var (
	ErrShort   = errors.New("proto: message truncated")
	ErrBadType = errors.New("proto: unknown message type")
)

const magic = 0xF0 // version/magic nibble guarding against stray traffic

// Obfuscator transforms endpoints on the wire. The paper suggests
// one's-complementing addresses so NATs cannot recognize them (§3.1).
type Obfuscator uint8

// Obfuscation modes.
const (
	// PlainEndpoints transmits addresses verbatim (vulnerable to
	// mangler NATs, §5.3).
	PlainEndpoints Obfuscator = iota
	// ObfuscatedEndpoints transmits the one's complement of each
	// address.
	ObfuscatedEndpoints
)

func (o Obfuscator) addr(a inet.Addr) inet.Addr {
	if o == ObfuscatedEndpoints {
		return a.Complement()
	}
	return a
}

// Encode serializes m. Obfuscation applies to both endpoint fields
// (it is its own inverse, so Decode uses the same Obfuscator).
func Encode(m *Message, obf Obfuscator) []byte {
	return AppendMessage(make([]byte, 0, 64+len(m.Data)), m, obf)
}

// AppendMessage appends the wire encoding of m to dst and returns the
// extended slice. This is the allocation-free form of Encode: hot
// paths (the rendezvous forwarder and §2.2 relay) re-encode into a
// reusable scratch buffer that amortizes to zero allocations per
// datagram.
func AppendMessage(dst []byte, m *Message, obf Obfuscator) []byte {
	buf := dst
	buf = append(buf, magic, byte(m.Type), byte(obf))
	buf = appendString(buf, m.From)
	buf = appendString(buf, m.Target)
	buf = appendEndpoint(buf, m.Public, obf)
	buf = appendEndpoint(buf, m.Private, obf)
	buf = binary.BigEndian.AppendUint64(buf, m.Nonce)
	if m.Requester {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.BigEndian.AppendUint32(buf, m.Seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Data)))
	buf = append(buf, m.Data...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Candidates)))
	for _, c := range m.Candidates {
		buf = append(buf, c.Kind)
		buf = binary.BigEndian.AppendUint32(buf, c.Priority)
		buf = appendEndpoint(buf, c.Endpoint, obf)
	}
	return buf
}

// Decode parses a message. The obfuscation mode is carried in the
// header, so peers interoperate regardless of their local setting.
func Decode(b []byte) (*Message, error) {
	m := &Message{}
	if err := decodeInto(m, b, nil); err != nil {
		return nil, err
	}
	return m, nil
}

// Decoder decodes messages into a reused Message, interning the
// From/Target name strings, so steady-state decoding on a server hot
// path allocates nothing. The returned *Message (and its Data and
// Candidates slices) is valid only until the next Decode call; the
// name strings are interned and safe to retain.
type Decoder struct {
	m     Message
	names map[string]string
}

// maxInternedNames bounds the intern table; a server bombarded with
// unique names resets the table rather than growing without bound.
const maxInternedNames = 1 << 14

// Decode parses one message into the Decoder's reused buffer.
func (d *Decoder) Decode(b []byte) (*Message, error) {
	if err := decodeInto(&d.m, b, d); err != nil {
		return nil, err
	}
	return &d.m, nil
}

// internString returns a stable string for the byte slice, allocating
// only the first time a given name is seen. The map index expression
// `d.names[string(b)]` does not allocate (the compiler elides the
// conversion for lookups).
func (d *Decoder) internString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.names[string(b)]; ok {
		return s
	}
	if d.names == nil || len(d.names) >= maxInternedNames {
		d.names = make(map[string]string, 16)
	}
	s := string(b)
	d.names[s] = s
	return s
}

// stringInterner abstracts the Decoder for decodeInto. An interface
// (rather than a func value) keeps the call allocation-free: a
// *Decoder converts to the interface without boxing.
type stringInterner interface {
	internString(b []byte) string
}

// decodeInto parses b into m, reusing m's Data and Candidates storage
// when capacity allows. A nil interner copies name strings fresh
// (Decode); a non-nil one interns them (Decoder). On error m is left
// partially filled and must be discarded.
func decodeInto(m *Message, b []byte, in stringInterner) error {
	if len(b) < 3 || b[0] != magic {
		return ErrShort
	}
	m.Type = Type(b[1])
	if m.Type == 0 || m.Type > TypeStreamPing {
		return ErrBadType
	}
	obf := Obfuscator(b[2])
	b = b[3:]
	var err error
	if m.From, b, err = readStringIn(b, in); err != nil {
		return err
	}
	if m.Target, b, err = readStringIn(b, in); err != nil {
		return err
	}
	if m.Public, b, err = readEndpoint(b, obf); err != nil {
		return err
	}
	if m.Private, b, err = readEndpoint(b, obf); err != nil {
		return err
	}
	if len(b) < 8+1+4+4 {
		return ErrShort
	}
	m.Nonce = binary.BigEndian.Uint64(b)
	m.Requester = b[8] == 1
	m.Seq = binary.BigEndian.Uint32(b[9:])
	n := binary.BigEndian.Uint32(b[13:])
	b = b[17:]
	if uint32(len(b)) < n {
		return ErrShort
	}
	if n > 0 {
		m.Data = append(m.Data[:0], b[:n]...)
	} else {
		// nil stays nil (fresh Message), reused storage truncates.
		m.Data = m.Data[:0]
	}
	b = b[n:]
	m.Candidates = m.Candidates[:0]
	// Trailing candidate section: absent in pre-negotiation encodings,
	// which decode as "no candidates".
	if len(b) == 0 {
		return nil
	}
	if len(b) < 2 {
		return ErrShort
	}
	cn := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if cn > 0 {
		if len(b) < cn*11 {
			return ErrShort
		}
		if cap(m.Candidates) < cn {
			m.Candidates = make([]Candidate, cn)
		} else {
			m.Candidates = m.Candidates[:cn]
		}
		for i := range m.Candidates {
			c := &m.Candidates[i]
			c.Kind = b[0]
			c.Priority = binary.BigEndian.Uint32(b[1:])
			if c.Endpoint, _, err = readEndpoint(b[5:11], obf); err != nil {
				return err
			}
			b = b[11:]
		}
	}
	return nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func readStringIn(b []byte, in stringInterner) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, ErrShort
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, ErrShort
	}
	if in != nil {
		return in.internString(b[:n]), b[n:], nil
	}
	return string(b[:n]), b[n:], nil
}

func appendEndpoint(buf []byte, ep inet.Endpoint, obf Obfuscator) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(obf.addr(ep.Addr)))
	return binary.BigEndian.AppendUint16(buf, uint16(ep.Port))
}

func readEndpoint(b []byte, obf Obfuscator) (inet.Endpoint, []byte, error) {
	if len(b) < 6 {
		return inet.Endpoint{}, nil, ErrShort
	}
	ep := inet.Endpoint{
		Addr: obf.addr(inet.Addr(binary.BigEndian.Uint32(b))),
		Port: inet.Port(binary.BigEndian.Uint16(b[4:])),
	}
	return ep, b[6:], nil
}

// --- stream framing for TCP transports ---

// AppendFrame appends a length-prefixed encoding of m to dst,
// suitable for a TCP byte stream. The body is encoded in place after
// a 4-byte length placeholder that is back-filled, so framing adds no
// allocation beyond what dst's growth requires.
func AppendFrame(dst []byte, m *Message, obf Obfuscator) []byte {
	at := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = AppendMessage(dst, m, obf)
	binary.BigEndian.PutUint32(dst[at:], uint32(len(dst)-at-4))
	return dst
}

// StreamDecoder incrementally decodes length-prefixed messages from a
// TCP byte stream.
type StreamDecoder struct {
	buf []byte
}

// Feed appends stream bytes and returns all complete messages.
// Malformed frames return an error and poison the decoder.
func (d *StreamDecoder) Feed(p []byte) ([]*Message, error) {
	d.buf = append(d.buf, p...)
	var out []*Message
	for {
		if len(d.buf) < 4 {
			return out, nil
		}
		n := binary.BigEndian.Uint32(d.buf)
		if n > 1<<20 {
			return out, fmt.Errorf("proto: oversized frame (%d bytes)", n)
		}
		if uint32(len(d.buf)-4) < n {
			return out, nil
		}
		m, err := Decode(d.buf[4 : 4+n])
		if err != nil {
			return out, err
		}
		d.buf = d.buf[4+n:]
		out = append(out, m)
	}
}
