package proto

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"natpunch/internal/inet"
)

func sampleMessage() *Message {
	return &Message{
		Type:      TypeConnectDetails,
		From:      "server",
		Target:    "client-b",
		Public:    inet.EP("155.99.25.11", 62000),
		Private:   inet.EP("10.0.0.1", 4321),
		Nonce:     0xDEADBEEFCAFE,
		Requester: true,
		Seq:       42,
		Data:      []byte("payload"),
		Candidates: []Candidate{
			{Kind: CandPrivate, Priority: 0x7F000001, Endpoint: inet.EP("10.0.0.1", 4321)},
			{Kind: CandPublic, Priority: 0x64000000, Endpoint: inet.EP("155.99.25.11", 62000)},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, obf := range []Obfuscator{PlainEndpoints, ObfuscatedEndpoints} {
		m := sampleMessage()
		got, err := Decode(Encode(m, obf))
		if err != nil {
			t.Fatalf("obf=%d: %v", obf, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("obf=%d: round trip mismatch:\n in: %+v\nout: %+v", obf, m, got)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(typ uint8, from, target string, pubA, privA uint32, pubP, privP uint16,
		nonce uint64, req bool, seq uint32, data []byte, obf bool,
		candKind uint8, candPrio uint32, candA uint32, candP uint16, nCands uint8) bool {
		m := &Message{
			Type: Type(typ%uint8(TypeNegotiateDetails)) + 1,
			From: from, Target: target,
			Public:  inet.Endpoint{Addr: inet.Addr(pubA), Port: inet.Port(pubP)},
			Private: inet.Endpoint{Addr: inet.Addr(privA), Port: inet.Port(privP)},
			Nonce:   nonce, Requester: req, Seq: seq,
		}
		if len(data) > 0 {
			m.Data = data
		}
		for i := uint8(0); i < nCands%5; i++ {
			m.Candidates = append(m.Candidates, Candidate{
				Kind:     candKind + i,
				Priority: candPrio - uint32(i),
				Endpoint: inet.Endpoint{Addr: inet.Addr(candA + uint32(i)), Port: inet.Port(candP)},
			})
		}
		mode := PlainEndpoints
		if obf {
			mode = ObfuscatedEndpoints
		}
		got, err := Decode(Encode(m, mode))
		return err == nil && reflect.DeepEqual(m, got)
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestObfuscationHidesAddressBytes(t *testing.T) {
	// The raw private address bytes must not appear in the obfuscated
	// wire form — that is the whole point (§3.1: defeat NATs scanning
	// for address-like byte sequences).
	m := &Message{Type: TypeRegister, From: "a", Private: inet.EP("10.0.0.1", 4321)}
	raw := inet.MustParseAddr("10.0.0.1").Octets()
	plain := Encode(m, PlainEndpoints)
	if !bytes.Contains(plain, raw[:]) {
		t.Fatal("plain encoding should contain the address bytes")
	}
	obf := Encode(m, ObfuscatedEndpoints)
	if bytes.Contains(obf, raw[:]) {
		t.Error("obfuscated encoding leaks raw address bytes")
	}
}

func TestCrossModeInterop(t *testing.T) {
	// The header carries the mode, so a plain-mode receiver decodes an
	// obfuscated message correctly.
	m := sampleMessage()
	got, err := Decode(Encode(m, ObfuscatedEndpoints))
	if err != nil || got.Private != m.Private {
		t.Fatalf("cross-mode decode: %+v, %v", got, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil input should fail")
	}
	if _, err := Decode([]byte{0x00, 1, 0}); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := Decode([]byte{magic, 99, 0, 0, 0, 0, 0}); err != ErrBadType {
		t.Error("unknown type should fail")
	}
	// Truncations at every length must error, never panic — except at
	// the candidate-section boundary: the section is trailing and
	// optional, so cutting exactly there yields a valid legacy
	// (candidate-less) encoding.
	full := Encode(sampleMessage(), PlainEndpoints)
	legacyLen := len(full) - 2 - 11*len(sampleMessage().Candidates)
	for i := 0; i < len(full)-1; i++ {
		m, err := Decode(full[:i])
		if i == legacyLen {
			if err != nil || len(m.Candidates) != 0 {
				t.Fatalf("legacy boundary at %d should decode candidate-less: %+v, %v", i, m, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("truncation at %d decoded successfully", i)
		}
	}
}

func TestStreamDecoder(t *testing.T) {
	m1 := sampleMessage()
	m2 := &Message{Type: TypeKeepAlive, From: "b", Seq: 7}
	var wire []byte
	wire = AppendFrame(wire, m1, PlainEndpoints)
	wire = AppendFrame(wire, m2, ObfuscatedEndpoints)

	// Feed in pathological 1-byte chunks.
	var d StreamDecoder
	var got []*Message
	for _, b := range wire {
		ms, err := d.Feed([]byte{b})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ms...)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d messages, want 2", len(got))
	}
	if !reflect.DeepEqual(got[0], m1) || got[1].Type != TypeKeepAlive || got[1].Seq != 7 {
		t.Errorf("stream decode mismatch: %+v %+v", got[0], got[1])
	}
}

func TestStreamDecoderOversizedFrame(t *testing.T) {
	var d StreamDecoder
	if _, err := d.Feed([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestStreamDecoderBatch(t *testing.T) {
	var wire []byte
	const n = 50
	for i := 0; i < n; i++ {
		wire = AppendFrame(wire, &Message{Type: TypeData, Seq: uint32(i)}, PlainEndpoints)
	}
	var d StreamDecoder
	got, err := d.Feed(wire)
	if err != nil || len(got) != n {
		t.Fatalf("batch decode: %d msgs, err=%v", len(got), err)
	}
	for i, m := range got {
		if m.Seq != uint32(i) {
			t.Fatalf("order broken at %d: %d", i, m.Seq)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	for typ := TypeRegister; typ <= TypeData; typ++ {
		if typ.String() == "" {
			t.Errorf("type %d has no name", typ)
		}
	}
}

func TestAppendMessageMatchesEncode(t *testing.T) {
	// AppendMessage into a prefixed buffer must produce exactly the
	// Encode bytes after the prefix — the hot paths depend on it.
	for _, obf := range []Obfuscator{PlainEndpoints, ObfuscatedEndpoints} {
		m := sampleMessage()
		want := Encode(m, obf)
		scratch := append(make([]byte, 0, 256), "prefix"...)
		got := AppendMessage(scratch, m, obf)
		if !bytes.Equal(got[:6], []byte("prefix")) || !bytes.Equal(got[6:], want) {
			t.Fatalf("obf=%d: AppendMessage diverges from Encode", obf)
		}
	}
}

func TestDecoderMatchesDecode(t *testing.T) {
	// A reused Decoder must agree with Decode on every message in a
	// mixed stream, including Data/Candidates shrinking between calls.
	msgs := []*Message{
		sampleMessage(),
		{Type: TypeKeepAlive, From: "b", Seq: 7},
		{Type: TypeRelayTo, From: "a", Target: "b", Seq: 9, Data: bytes.Repeat([]byte("x"), 900)},
		{Type: TypeRelayTo, From: "a", Target: "b", Seq: 10, Data: []byte("s")},
		{Type: TypeRegister, From: "a", Private: inet.EP("10.0.0.1", 4321)},
		sampleMessage(),
	}
	var d Decoder
	for i, m := range msgs {
		wire := Encode(m, ObfuscatedEndpoints)
		want, err := Decode(wire)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Decode(wire)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		// The Decoder reuses storage, so compare field-by-field with
		// value semantics rather than slice identity.
		if got.Type != want.Type || got.From != want.From || got.Target != want.Target ||
			got.Public != want.Public || got.Private != want.Private ||
			got.Nonce != want.Nonce || got.Requester != want.Requester || got.Seq != want.Seq ||
			!bytes.Equal(got.Data, want.Data) || len(got.Candidates) != len(want.Candidates) {
			t.Fatalf("msg %d: Decoder diverges from Decode:\nwant %+v\n got %+v", i, want, got)
		}
		for j := range want.Candidates {
			if got.Candidates[j] != want.Candidates[j] {
				t.Fatalf("msg %d cand %d mismatch", i, j)
			}
		}
	}
}

func TestDecoderInternsNames(t *testing.T) {
	var d Decoder
	wire := Encode(&Message{Type: TypeKeepAlive, From: "alice", Target: "bob"}, PlainEndpoints)
	m1, err := d.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	first, firstTarget := m1.From, m1.Target
	m2, err := d.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	// Interned strings are stable across calls (same backing storage),
	// so retaining them — registry records do — is safe and alloc-free.
	if m2.From != first || m2.Target != firstTarget {
		t.Fatal("interned names changed between decodes")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := d.Decode(wire); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Decoder.Decode allocates %v/op, want 0", allocs)
	}
}

func TestDecoderInternTableBounded(t *testing.T) {
	var d Decoder
	m := &Message{Type: TypeKeepAlive}
	name := make([]byte, 8)
	for i := 0; i < maxInternedNames+100; i++ {
		binary.BigEndian.PutUint64(name, uint64(i))
		m.From = string(name)
		if _, err := d.Decode(Encode(m, PlainEndpoints)); err != nil {
			t.Fatal(err)
		}
	}
	if len(d.names) > maxInternedNames {
		t.Fatalf("intern table grew to %d entries, bound is %d", len(d.names), maxInternedNames)
	}
}
