package proto_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"natpunch/internal/host"
	"natpunch/internal/ice"
	"natpunch/internal/inet"
	"natpunch/internal/nat"
	"natpunch/internal/proto"
	"natpunch/internal/punch"
	"natpunch/internal/rendezvous"
	"natpunch/internal/sim"
	"natpunch/internal/topo"
)

// capturedCorpus runs a complete UDP hole punch on the simulator —
// registration, connect-request forwarding, crossing probes, ack,
// application data, keep-alives, plus a relay fallback — with a
// fabric hook recording every distinct UDP payload. The fuzz seeds
// are therefore real captured protocol messages, not hand-built
// approximations.
func capturedCorpus(tb testing.TB) [][]byte {
	tb.Helper()
	seen := make(map[string]bool)
	var wires [][]byte
	capture := func(c *topo.Canonical, cfg punch.Config) {
		srv, err := rendezvous.New(c.S, 1234, 0)
		if err != nil {
			tb.Fatal(err)
		}
		c.Net.SetHook(func(kind sim.HookKind, _ *sim.Segment, _ *sim.Iface, pkt *inet.Packet) {
			if kind != sim.HookSend || pkt.Proto != inet.UDP || len(pkt.Payload) == 0 {
				return
			}
			if !seen[string(pkt.Payload)] {
				seen[string(pkt.Payload)] = true
				wires = append(wires, append([]byte(nil), pkt.Payload...))
			}
		})
		a := punch.NewClient(c.A, "alice", srv.Endpoint(), cfg)
		b := punch.NewClient(c.B, "bob", srv.Endpoint(), cfg)
		if err := a.RegisterUDP(4321, nil); err != nil {
			tb.Fatal(err)
		}
		if err := b.RegisterUDP(4321, nil); err != nil {
			tb.Fatal(err)
		}
		c.RunFor(2 * time.Second)
		b.InboundUDP = punch.UDPCallbacks{
			Data: func(s *punch.UDPSession, p []byte) { s.Send([]byte("pong")) },
		}
		a.ConnectUDP("bob", punch.UDPCallbacks{
			Established: func(s *punch.UDPSession) { s.Send([]byte("ping")) },
		})
		c.RunFor(30 * time.Second) // punch + data + a keep-alive round
	}
	// Cone pair: registration, details, probes, ack, data, keep-alive.
	capture(topo.NewCanonical(1, nat.Cone(), nat.Cone()), punch.Config{})
	// Obfuscated endpoints exercise the complemented-address wire form.
	capture(topo.NewCanonical(2, nat.Mangler(), nat.Cone()), punch.Config{Obfuscate: true})
	// Symmetric pair with relay fallback: error/relay message shapes.
	capture(topo.NewCanonical(3, nat.Symmetric(), nat.Symmetric()), punch.Config{RelayFallback: true})

	// Candidate-negotiation traffic (internal/ice): TypeNegotiate
	// offers and TypeNegotiateDetails with multi-entry candidate
	// lists, plus the check/ack flow, over the topologies that
	// exercise each candidate type.
	captureICE := func(in *topo.Internet, s, hostA, hostB *host.Host, cfg punch.Config) {
		srv, err := rendezvous.New(s, 1234, 0)
		if err != nil {
			tb.Fatal(err)
		}
		in.Net.SetHook(func(kind sim.HookKind, _ *sim.Segment, _ *sim.Iface, pkt *inet.Packet) {
			if kind != sim.HookSend || pkt.Proto != inet.UDP || len(pkt.Payload) == 0 {
				return
			}
			if !seen[string(pkt.Payload)] {
				seen[string(pkt.Payload)] = true
				wires = append(wires, append([]byte(nil), pkt.Payload...))
			}
		})
		a := punch.NewClient(hostA, "alice", srv.Endpoint(), cfg)
		b := punch.NewClient(hostB, "bob", srv.Endpoint(), cfg)
		agA, agB := ice.New(a, ice.Config{}), ice.New(b, ice.Config{})
		if err := a.RegisterUDP(4321, nil); err != nil {
			tb.Fatal(err)
		}
		if err := b.RegisterUDP(4321, nil); err != nil {
			tb.Fatal(err)
		}
		in.RunFor(2 * time.Second)
		agB.Inbound = ice.Callbacks{
			Data: func(s *punch.UDPSession, p []byte) { s.Send([]byte("pong")) },
		}
		agA.Connect("bob", ice.Callbacks{
			Established: func(s *punch.UDPSession, _ ice.Candidate) { s.Send([]byte("ping")) },
		})
		in.RunFor(30 * time.Second)
	}
	// Figure 4 (private candidate wins) and Figure 6 with hairpin
	// (hairpin candidate wins; obfuscated candidate endpoints).
	c4 := topo.NewCommonNAT(4, nat.Cone())
	captureICE(c4.Internet, c4.S, c4.A, c4.B, punch.Config{})
	c6 := topo.NewMultiLevel(5, nat.WellBehaved(), nat.Cone(), nat.Cone())
	captureICE(c6.Internet, c6.S, c6.A, c6.B, punch.Config{Obfuscate: true})

	// Server-to-server federation traffic: two federated servers
	// introduce a cross-homed symmetric pair, so the capture includes
	// FedHello, FedRecord replication (join sync + keep-alive
	// refreshes), and FedForward-wrapped deliveries — including the
	// federated §2.2 relay path.
	captureFed := func(seed int64) {
		in := topo.NewInternet(seed)
		core := in.CoreRealm()
		h1 := core.AddHost("S1", "18.181.0.31", host.BSDStyle)
		h2 := core.AddHost("S2", "18.181.0.32", host.BSDStyle)
		s1, err := rendezvous.New(h1, 1234, 0)
		if err != nil {
			tb.Fatal(err)
		}
		s2, err := rendezvous.New(h2, 1234, 0)
		if err != nil {
			tb.Fatal(err)
		}
		in.Net.SetHook(func(kind sim.HookKind, _ *sim.Segment, _ *sim.Iface, pkt *inet.Packet) {
			if kind != sim.HookSend || pkt.Proto != inet.UDP || len(pkt.Payload) == 0 {
				return
			}
			if !seen[string(pkt.Payload)] {
				seen[string(pkt.Payload)] = true
				wires = append(wires, append([]byte(nil), pkt.Payload...))
			}
		})
		s1.Join(s2.Endpoint())
		realmA := core.AddSite("NAT-A", nat.Symmetric(), "155.99.25.11", "10.0.0.0/24")
		realmB := core.AddSite("NAT-B", nat.Symmetric(), "138.76.29.7", "10.1.1.0/24")
		cfg := punch.Config{RelayFallback: true, PunchTimeout: 2 * time.Second}
		a := punch.NewClient(realmA.AddHost("A", "10.0.0.1", host.BSDStyle), "alice", s1.Endpoint(), cfg)
		b := punch.NewClient(realmB.AddHost("B", "10.1.1.3", host.BSDStyle), "bob", s2.Endpoint(), cfg)
		if err := a.RegisterUDP(4321, nil); err != nil {
			tb.Fatal(err)
		}
		if err := b.RegisterUDP(4321, nil); err != nil {
			tb.Fatal(err)
		}
		in.RunFor(2 * time.Second)
		b.InboundUDP = punch.UDPCallbacks{
			Data: func(s *punch.UDPSession, p []byte) { s.Send([]byte("pong")) },
		}
		a.ConnectUDP("bob", punch.UDPCallbacks{
			Established: func(s *punch.UDPSession) { s.Send([]byte("ping")) },
		})
		in.RunFor(30 * time.Second)
	}
	captureFed(6)

	if len(wires) < 12 {
		tb.Fatalf("capture produced only %d distinct messages", len(wires))
	}
	hasCandidates := false
	fedTypes := map[proto.Type]bool{}
	for _, w := range wires {
		if m, err := proto.Decode(w); err == nil {
			if len(m.Candidates) > 0 {
				hasCandidates = true
			}
			switch m.Type {
			case proto.TypeFedHello, proto.TypeFedRecord, proto.TypeFedForward:
				fedTypes[m.Type] = true
			}
		}
	}
	if !hasCandidates {
		tb.Fatal("capture produced no candidate-bearing messages")
	}
	if len(fedTypes) != 3 {
		tb.Fatalf("federation capture incomplete: got %v, want hello+record+forward", fedTypes)
	}
	return wires
}

// FuzzMessageParse asserts Decode is total (never panics, never
// reads out of bounds) and canonical: any accepted input re-encodes
// to a wire form that decodes to the identical message, and that
// canonical form is a fixed point of encode∘decode.
func FuzzMessageParse(f *testing.F) {
	for _, wire := range capturedCorpus(f) {
		f.Add(wire)
	}
	// Adversarial shapes: empty, bad magic, truncated header, huge
	// declared lengths.
	f.Add([]byte{})
	f.Add([]byte{0xF0})
	f.Add([]byte{0x00, 0x01, 0x00})
	f.Add([]byte{0xF0, 0x05, 0x01, 0xFF, 0xFF})
	// Stream-layer shapes (natpunch/stream rides the same envelope):
	// Nonce carries the stream ID, Seq the offset/ack/limit/token,
	// Requester the FIN bit.
	for _, m := range []proto.Message{
		{Type: proto.TypeStream, Nonce: 2, Seq: 4096, Requester: true, Data: []byte("payload")},
		{Type: proto.TypeStreamAck, Nonce: 2, Seq: 4103, Requester: true},
		{Type: proto.TypeStreamWindow, Nonce: 0, Seq: 1 << 20},
		{Type: proto.TypeStreamReset, Nonce: 3},
		{Type: proto.TypeStreamPing, Nonce: 0, Seq: 0xDEAD, Requester: true},
	} {
		f.Add(proto.Encode(&m, proto.PlainEndpoints))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := proto.Decode(data)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		canonical := proto.Encode(m, proto.PlainEndpoints)
		m2, err := proto.Decode(canonical)
		if err != nil {
			t.Fatalf("re-encoding a decoded message failed to decode: %v\nmsg: %+v", err, m)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("encode/decode round trip drifted:\n in: %+v\nout: %+v", m, m2)
		}
		if again := proto.Encode(m2, proto.PlainEndpoints); !bytes.Equal(canonical, again) {
			t.Fatalf("canonical form is not a fixed point:\n first: %x\nsecond: %x", canonical, again)
		}
	})
}

// FuzzStreamDecoder asserts the TCP stream framing layer never
// panics and is chunking-invariant: feeding a byte stream all at once
// and one byte at a time must yield the same messages up to the first
// error, and an error must poison both the same way.
func FuzzStreamDecoder(f *testing.F) {
	var framed []byte
	for _, wire := range capturedCorpus(f) {
		framed = binaryAppendFrame(framed, wire)
	}
	f.Add(framed)
	f.Add([]byte{0x00, 0x00, 0x00, 0x01, 0xF0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	// recvmmsg-batch shapes: a read-loop delivering kernel batches
	// feeds the stream decoder runs of whole frames at once, and the
	// batch boundary can land mid-frame. Seed a 16-frame relay burst
	// (one recvmmsg's worth of back-to-back RelayTo traffic), the same
	// burst cut mid-frame, and a burst with a poisoned tail frame.
	var burst []byte
	for i := 0; i < 16; i++ {
		burst = proto.AppendFrame(burst, &proto.Message{
			Type: proto.TypeRelayTo, From: "alice", Target: "bob",
			Seq: uint32(i + 1), Data: []byte("batched payload"),
		}, proto.PlainEndpoints)
	}
	f.Add(append([]byte(nil), burst...))
	f.Add(append([]byte(nil), burst[:len(burst)-7]...))
	f.Add(append(append([]byte(nil), burst...), 0x00, 0x00, 0x00, 0x03, 0xF0, 0x63, 0x00))
	f.Fuzz(func(t *testing.T, data []byte) {
		var whole proto.StreamDecoder
		batch, batchErr := whole.Feed(data)

		var drip proto.StreamDecoder
		var dripped []*proto.Message
		var dripErr error
		for _, b := range data {
			ms, err := drip.Feed([]byte{b})
			dripped = append(dripped, ms...)
			if err != nil {
				dripErr = err
				break
			}
		}

		if (batchErr == nil) != (dripErr == nil) {
			t.Fatalf("error disagreement: batch=%v drip=%v", batchErr, dripErr)
		}
		if batchErr != nil {
			// Both failed; the drip feed may have yielded a prefix of
			// the batch messages before hitting the poison frame.
			if len(dripped) > len(batch) {
				t.Fatalf("drip decoded %d messages past batch's %d before erroring", len(dripped), len(batch))
			}
			return
		}
		if len(batch) != len(dripped) {
			t.Fatalf("chunking changed message count: batch=%d drip=%d", len(batch), len(dripped))
		}
		for i := range batch {
			if !reflect.DeepEqual(batch[i], dripped[i]) {
				t.Fatalf("message %d differs between feeds:\nbatch: %+v\n drip: %+v", i, batch[i], dripped[i])
			}
		}
	})
}

// binaryAppendFrame length-prefixes raw bytes the way AppendFrame
// does for encoded messages.
func binaryAppendFrame(dst, body []byte) []byte {
	n := uint32(len(body))
	dst = append(dst, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	return append(dst, body...)
}
