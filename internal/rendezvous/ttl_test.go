package rendezvous_test

// Regression suite for the registration-expiry bugfix: before the
// registry gained TTLs, a client that died without teardown stayed in
// the table and kept receiving forwards forever. Now a silent peer is
// purged once its §3.6 keep-alives stop, and subsequent dials fail
// fast with the server's error reply instead of timing out punching
// at a ghost.

import (
	"errors"
	"testing"
	"time"

	"natpunch/internal/nat"
	"natpunch/internal/proto"
	"natpunch/internal/punch"
	"natpunch/internal/rendezvous"
	"natpunch/internal/topo"
	"natpunch/transport"
)

// newTTLWorld builds the canonical pair against a server with the
// given TTL, with bob's registration keep-alives disabled so he goes
// silent the moment he registers.
func newTTLWorld(t *testing.T, ttl time.Duration) (*topo.Canonical, *rendezvous.Server, *punch.Client, *punch.Client) {
	t.Helper()
	c := topo.NewCanonical(1, nat.Cone(), nat.Cone())
	srv, err := rendezvous.Serve(c.S.Transport(), rendezvous.Config{Port: 1234, TTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	a := punch.NewClient(c.A, "alice", srv.Endpoint(), punch.Config{})
	b := punch.NewClient(c.B, "bob", srv.Endpoint(), punch.Config{
		DisableRegistrationKeepAlive: true,
	})
	if err := a.RegisterUDP(4321, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.RegisterUDP(4321, nil); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	if !a.UDPRegistered() || !b.UDPRegistered() {
		t.Fatal("registration incomplete")
	}
	return c, srv, a, b
}

func TestSilentPeerPurgedAndDialFailsFast(t *testing.T) {
	c, srv, a, _ := newTTLWorld(t, 30*time.Second)
	if !srv.Registered("bob") {
		t.Fatal("bob not registered")
	}
	// Bob goes silent (no §3.6 keep-alives); his record must age out.
	c.RunFor(31 * time.Second)
	if srv.Registered("bob") {
		t.Fatal("silent peer still registered past its TTL")
	}
	// A dial toward the purged peer fails fast on S's error reply —
	// not by punching at a ghost until the punch timeout.
	start := c.Net.Sched.Now()
	var dialErr error
	var failedAt time.Duration
	a.ConnectUDP("bob", punch.UDPCallbacks{
		Established: func(*punch.UDPSession) { t.Error("established a session with a purged peer") },
		Failed: func(_ string, err error) {
			dialErr = err
			failedAt = c.Net.Sched.Now()
		},
	})
	c.RunFor(15 * time.Second) // past the default 10s punch timeout
	if !errors.Is(dialErr, punch.ErrPeerUnknown) {
		t.Fatalf("dial error = %v, want ErrPeerUnknown", dialErr)
	}
	if elapsed := failedAt - start; elapsed > 2*time.Second {
		t.Errorf("failure took %v; want the fast error path, not a punch timeout", elapsed)
	}
}

func TestKeepAlivesExtendRegistrationTTL(t *testing.T) {
	c := topo.NewCanonical(2, nat.Cone(), nat.Cone())
	srv, err := rendezvous.Serve(c.S.Transport(), rendezvous.Config{Port: 1234, TTL: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Default 15s keep-alives against a 30s TTL: the record must
	// survive arbitrarily long.
	b := punch.NewClient(c.B, "bob", srv.Endpoint(), punch.Config{})
	if err := b.RegisterUDP(4321, nil); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * time.Minute)
	if !srv.Registered("bob") {
		t.Fatal("keep-alives failed to extend the registration TTL")
	}
}

func TestNegativeTTLDisablesExpiry(t *testing.T) {
	c, srv, _, _ := newTTLWorld(t, -1)
	c.RunFor(time.Hour)
	if !srv.Registered("bob") {
		t.Fatal("expiry ran with a negative TTL")
	}
}

// TestRelayToPurgedPeerErrors pins the original bug's worst symptom:
// forwards to a dead client must stop once the TTL fires.
func TestRelayToPurgedPeerErrors(t *testing.T) {
	c, srv, a, _ := newTTLWorld(t, 30*time.Second)
	c.RunFor(31 * time.Second)
	before := srv.Stats().Errors
	// Raw relay attempt toward the purged name.
	a.SendUDPMessage(srv.Endpoint(), &proto.Message{
		Type: proto.TypeRelayTo, From: "alice", Target: "bob", Seq: 1, Data: []byte("x"),
	})
	c.RunFor(time.Second)
	if srv.Stats().Errors == before {
		t.Error("relay to a purged peer was not rejected")
	}
	if srv.Stats().RelayedMessages != 0 {
		t.Error("relay to a purged peer was forwarded")
	}
}

// Compile-time check that the server still satisfies the transport
// seam contract for adapters (Serve over any transport.Transport).
var _ = func(tr transport.Transport) {
	_, _ = rendezvous.Serve(tr, rendezvous.Config{})
}
