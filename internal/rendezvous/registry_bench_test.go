package rendezvous_test

import (
	"fmt"
	"testing"
	"time"

	"natpunch/internal/rendezvous"
)

// BenchmarkRegistryShards measures registration + lookup throughput
// of the sharded registry across shard counts under parallel load —
// the scaling knob a million-client rendezvous tier turns. One lock
// (shards=1) serializes everything; more shards let registrations and
// lookups proceed concurrently.
func BenchmarkRegistryShards(b *testing.B) {
	const population = 4096
	names := make([]string, population)
	for i := range names {
		names[i] = fmt.Sprintf("peer-%d", i)
	}
	for _, shards := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			reg := rendezvous.NewShardedRegistry(shards)
			for i, n := range names {
				reg.Put(rendezvous.Record{Name: n, ExpiresAt: time.Hour, Public: ep(i % 250)})
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					name := names[i%population]
					switch i % 8 {
					case 0:
						reg.Put(rendezvous.Record{Name: name, ExpiresAt: time.Hour})
					case 1:
						reg.Touch(name, ep(1), time.Hour, time.Minute)
					default:
						reg.Get(name, time.Minute)
					}
					i++
				}
			})
		})
	}
}
