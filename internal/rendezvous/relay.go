package rendezvous

import "natpunch/internal/proto"

// The relay service: the §2.2 fallback that forwards application
// payloads between clients who could not punch. It is part of every
// full rendezvous server and is also the entire surface of a
// relay-only deployment (Config.RelayOnly, package natpunch/relayapi)
// — clients select dedicated relay hosts with WithRelayServers and
// keep the §2.2 load off the brokering tier.

// relay forwards the payload to the target over the target's
// registered session: directly for local clients, through the
// target's home server for federated ones, or down the TCP
// registration connection when that is the only surface the target
// has.
func (s *Server) relay(m *proto.Message) {
	out := &proto.Message{
		Type: proto.TypeRelayed, From: m.From, Target: m.Target,
		Seq: m.Seq, Data: m.Data,
	}
	count := func() {
		if m.Seq != 0 || len(m.Data) > 0 {
			// Empty Seq-0 relays are §3.6 keep-alives, not the relay load
			// §2.2 warns about; forward them but keep the stats honest.
			s.stats.RelayedMessages++
			s.stats.RelayedBytes += uint64(len(m.Data))
		}
	}
	if rec, ok := s.reg.Get(m.Target, s.now()); ok {
		count()
		s.deliver(rec, out)
		return
	}
	if c, ok := s.tcpc[m.Target]; ok {
		count()
		s.sendTCP(c, out)
		return
	}
	s.stats.Errors++
}
