package rendezvous

import "natpunch/internal/proto"

// The relay service: the §2.2 fallback that forwards application
// payloads between clients who could not punch. It is part of every
// full rendezvous server and is also the entire surface of a
// relay-only deployment (Config.RelayOnly, package natpunch/relayapi)
// — clients select dedicated relay hosts with WithRelayServers and
// keep the §2.2 load off the brokering tier.

// relay forwards the payload to the target over the target's
// registered session: directly for local clients, through the
// target's home server for federated ones, or down the TCP
// registration connection when that is the only surface the target
// has.
// relay runs on the server's packets-per-second ceiling, so it is
// written to allocate nothing: the outgoing message reuses the
// server's scratch skeleton (referencing the decoder's payload
// buffer, which sendUDP/sendTCP fully consume before returning) and
// the stats check is inlined rather than closed over.
func (s *Server) relay(m *proto.Message) {
	// Empty Seq-0 relays are §3.6 keep-alives, not the relay load
	// §2.2 warns about; forward them but keep the stats honest.
	counted := m.Seq != 0 || len(m.Data) > 0
	if rec, ok := s.reg.Get(m.Target, s.now()); ok {
		if counted {
			s.stats.RelayedMessages++
			s.stats.RelayedBytes += uint64(len(m.Data))
		}
		out := &s.scratchMsg
		*out = proto.Message{
			Type: proto.TypeRelayed, From: m.From, Target: m.Target,
			Seq: m.Seq, Data: m.Data,
		}
		s.deliver(rec, out)
		return
	}
	if c, ok := s.tcpc[m.Target]; ok {
		if counted {
			s.stats.RelayedMessages++
			s.stats.RelayedBytes += uint64(len(m.Data))
		}
		out := &s.scratchMsg
		*out = proto.Message{
			Type: proto.TypeRelayed, From: m.From, Target: m.Target,
			Seq: m.Seq, Data: m.Data,
		}
		s.sendTCP(c, out)
		return
	}
	s.stats.Errors++
}
