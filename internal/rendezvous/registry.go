package rendezvous

import (
	"sort"
	"sync"
	"time"

	"natpunch/internal/inet"
)

// Record is one client's UDP registration as the registry stores it:
// the §3.1 endpoint pair (public observed by a server, private
// reported by the client), which server the client is homed at, and
// when the record expires unless a §3.6 keep-alive refreshes it.
type Record struct {
	// Name is the client's rendezvous identity.
	Name string
	// Public is the client's public endpoint as observed by its home
	// server (§3.1: authoritative, read from the packet header).
	Public inet.Endpoint
	// Private is the client's own view of its endpoint, reported in
	// the registration body (§3.1).
	Private inet.Endpoint
	// Home is the federation peer the client registered with, or the
	// zero endpoint when the client is homed at the server holding
	// this record. Only the home server's datagrams can traverse the
	// client's NAT filter state, so all deliveries route through it.
	Home inet.Endpoint
	// ExpiresAt is the registry-clock instant after which the record
	// is dead (a silent client whose keep-alives stopped, §3.6).
	// Zero means the record never expires.
	ExpiresAt time.Duration
}

// Local reports whether the record is homed at the holding server.
func (r Record) Local() bool { return r.Home.IsZero() }

// Expired reports whether the record is past its TTL at now.
func (r Record) Expired(now time.Duration) bool {
	return r.ExpiresAt > 0 && now > r.ExpiresAt
}

// Registry is the pluggable registration store behind a rendezvous
// (or relay-mode) server. Implementations must be safe for concurrent
// use: the default server drives it from one serialized transport
// context, but a registry may also be shared across servers or
// benchmarked from many goroutines.
//
// Expiry is lazy: Get filters (and evicts) records past their TTL, so
// no background sweeper — which would keep a discrete-event
// simulation's queue eternally non-empty — is required.
type Registry interface {
	// Put inserts or replaces the record under rec.Name.
	Put(rec Record)
	// Get returns the live record for name. A record past its TTL is
	// evicted and reported as missing — the §3.6 contract that a
	// silent peer stops being dialable.
	Get(name string, now time.Duration) (Record, bool)
	// Touch restarts the TTL of name's record (a keep-alive arrived)
	// and optionally refreshes its public endpoint (the NAT may have
	// expired the old mapping). It reports whether a live record
	// existed.
	Touch(name string, public inet.Endpoint, expiresAt, now time.Duration) bool
	// Remove deletes name's record.
	Remove(name string)
	// Len counts live records at now.
	Len(now time.Duration) int
	// Range calls fn for every live record at now, in unspecified
	// order, until fn returns false. Callers that act on the set (for
	// example federation sync) must impose their own order first.
	Range(now time.Duration, fn func(Record) bool)
}

// DefaultShards is the shard count of the registry a server builds
// when none is supplied.
const DefaultShards = 16

// ShardedRegistry is the default Registry: records are spread over
// independently locked shards by a stable hash of the name, so
// registration and lookup scale with cores instead of serializing on
// one table lock (see BenchmarkRegistryShards).
type ShardedRegistry struct {
	shards []registryShard
}

type registryShard struct {
	mu   sync.RWMutex
	recs map[string]Record
}

// NewShardedRegistry builds a registry with the given shard count
// (values < 1 take DefaultShards).
func NewShardedRegistry(shards int) *ShardedRegistry {
	if shards < 1 {
		shards = DefaultShards
	}
	r := &ShardedRegistry{shards: make([]registryShard, shards)}
	for i := range r.shards {
		r.shards[i].recs = make(map[string]Record)
	}
	return r
}

// Shards returns the shard count.
func (r *ShardedRegistry) Shards() int { return len(r.shards) }

func (r *ShardedRegistry) shard(name string) *registryShard {
	// Inlined FNV-1a: fnv.New32a escapes through its interface and
	// would put one heap allocation on every registry operation.
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return &r.shards[h%uint32(len(r.shards))]
}

// Put implements Registry.
func (r *ShardedRegistry) Put(rec Record) {
	s := r.shard(rec.Name)
	s.mu.Lock()
	s.recs[rec.Name] = rec
	s.mu.Unlock()
}

// Get implements Registry, evicting expired records lazily.
func (r *ShardedRegistry) Get(name string, now time.Duration) (Record, bool) {
	s := r.shard(name)
	s.mu.RLock()
	rec, ok := s.recs[name]
	s.mu.RUnlock()
	if !ok {
		return Record{}, false
	}
	if rec.Expired(now) {
		s.mu.Lock()
		// Re-check under the write lock: a concurrent refresh wins.
		if cur, ok := s.recs[name]; ok && cur.Expired(now) {
			delete(s.recs, name)
		}
		s.mu.Unlock()
		return Record{}, false
	}
	return rec, true
}

// Touch implements Registry.
func (r *ShardedRegistry) Touch(name string, public inet.Endpoint, expiresAt, now time.Duration) bool {
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[name]
	if !ok || rec.Expired(now) {
		if ok {
			delete(s.recs, name)
		}
		return false
	}
	if !public.IsZero() {
		rec.Public = public
	}
	rec.ExpiresAt = expiresAt
	s.recs[name] = rec
	return true
}

// Remove implements Registry.
func (r *ShardedRegistry) Remove(name string) {
	s := r.shard(name)
	s.mu.Lock()
	delete(s.recs, name)
	s.mu.Unlock()
}

// Len implements Registry.
func (r *ShardedRegistry) Len(now time.Duration) int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		//natlint:ignore maporder counting with the pure Expired predicate is order-insensitive
		for _, rec := range s.recs {
			if !rec.Expired(now) {
				n++
			}
		}
		s.mu.RUnlock()
	}
	return n
}

// Range implements Registry.
func (r *ShardedRegistry) Range(now time.Duration, fn func(Record) bool) {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		recs := make([]Record, 0, len(s.recs))
		//natlint:ignore maporder Range's contract leaves order unspecified; order-sensitive callers sort (federation sync name-sorts, federation.go)
		for _, rec := range s.recs {
			if !rec.Expired(now) {
				recs = append(recs, rec)
			}
		}
		s.mu.RUnlock()
		for _, rec := range recs {
			if !fn(rec) {
				return
			}
		}
	}
}

// --- stable server ownership (rendezvous hashing) ---

// ownerScore is the rendezvous ("highest random weight") hash of one
// (name, server) pair. It depends only on the name and the server's
// endpoint — never on registry shard counts or the order the server
// list was supplied in — so every participant computes the same owner
// for a name from the same server set.
func ownerScore(name string, server inet.Endpoint) uint64 {
	// Inlined allocation-free FNV-1a over name ++ endpoint bytes.
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * prime
	}
	for _, b := range [6]byte{
		byte(server.Addr >> 24), byte(server.Addr >> 16),
		byte(server.Addr >> 8), byte(server.Addr),
		byte(server.Port >> 8), byte(server.Port),
	} {
		h = (h ^ uint64(b)) * prime
	}
	// splitmix64 finalizer: FNV alone mixes poorly over inputs that
	// differ in one trailing byte (consecutive server addresses), which
	// would skew ownership shares.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Preference orders a server pool for one client name, best first:
// the head is the name's owner (its home server), the tail is the
// deterministic failover order. The order is a pure function of the
// name and the *set* of servers — input order and registry sharding
// are irrelevant — which is what lets clients, servers, and the fleet
// simulator all agree on who homes whom.
func Preference(name string, servers []inet.Endpoint) []inet.Endpoint {
	out := append([]inet.Endpoint(nil), servers...)
	scores := make(map[inet.Endpoint]uint64, len(out))
	for _, s := range out {
		scores[s] = ownerScore(name, s)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := scores[out[i]], scores[out[j]]
		if si != sj {
			return si > sj
		}
		return out[i].Less(out[j]) // total order even on hash ties
	})
	return out
}

// Owner returns the server that owns name in the given pool (the head
// of Preference), or the zero endpoint for an empty pool.
func Owner(name string, servers []inet.Endpoint) inet.Endpoint {
	if len(servers) == 0 {
		return inet.Endpoint{}
	}
	best := servers[0]
	bestScore := ownerScore(name, best)
	for _, s := range servers[1:] {
		sc := ownerScore(name, s)
		if sc > bestScore || (sc == bestScore && s.Less(best)) {
			best, bestScore = s, sc
		}
	}
	return best
}
