package rendezvous

import (
	"math/rand"
	"testing"
	"time"

	"natpunch/internal/inet"
	"natpunch/internal/proto"
	"natpunch/transport"
)

// The allocs/op regression gate for the server's packets-per-second
// ceiling: with a transport whose conns release payloads before
// SendTo returns (transport.ScratchSender — realudp does), the
// relay, forwarder, and keep-alive paths must run without a single
// steady-state heap allocation. CI runs these tests by name; a
// regression here is a regression in relay goodput.

// stubConn is a ScratchSender conn that counts sends and discards
// payloads, isolating the server's own allocation behavior.
type stubConn struct {
	local  inet.Endpoint
	onRecv func(from inet.Endpoint, payload []byte)
	sent   int
	lastTo inet.Endpoint
}

func (c *stubConn) Local() inet.Endpoint                               { return c.local }
func (c *stubConn) OnRecv(fn func(from inet.Endpoint, payload []byte)) { c.onRecv = fn }
func (c *stubConn) SendTo(to inet.Endpoint, payload []byte) error {
	c.sent++
	c.lastTo = to
	return nil
}
func (c *stubConn) Close()              {}
func (c *stubConn) ScratchSendOK() bool { return true }

type stubTimer struct{}

func (stubTimer) Stop() bool   { return false }
func (stubTimer) Active() bool { return false }

type stubTransport struct {
	conn *stubConn
	rng  *rand.Rand
}

func (t *stubTransport) BindUDP(port inet.Port) (transport.UDPConn, error) { return t.conn, nil }
func (t *stubTransport) After(d time.Duration, fn func()) transport.Timer  { return stubTimer{} }
func (t *stubTransport) Now() time.Duration                                { return time.Second }
func (t *stubTransport) Rand() *rand.Rand                                  { return t.rng }
func (t *stubTransport) Invoke(fn func())                                  { fn() }

// allocServer builds a server over the stub transport with alice and
// bob registered via real wire traffic.
func allocServer(t testing.TB, cfg Config) (*Server, *stubConn) {
	t.Helper()
	conn := &stubConn{local: inet.MustParseEndpoint("18.181.0.31:1234")}
	s, err := Serve(&stubTransport{conn: conn, rng: rand.New(rand.NewSource(1))}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alice", "bob"} {
		wire := proto.Encode(&proto.Message{
			Type: proto.TypeRegister, From: name,
			Private: inet.MustParseEndpoint("10.0.0.1:4321"),
		}, 0)
		conn.onRecv(clientEP(name), wire)
	}
	return s, conn
}

func clientEP(name string) inet.Endpoint {
	if name == "alice" {
		return inet.MustParseEndpoint("155.99.25.11:62000")
	}
	return inet.MustParseEndpoint("138.76.29.7:31000")
}

func requireZeroAllocs(t *testing.T, what string, fn func()) {
	t.Helper()
	fn() // warm up scratch buffers and intern table
	fn()
	if allocs := testing.AllocsPerRun(500, fn); allocs != 0 {
		t.Errorf("%s allocates %v/op in steady state, want 0", what, allocs)
	}
}

// TestRelayForwardZeroAlloc pins the §2.2 relay forward path —
// decode, registry lookup, re-encode, send — at zero allocations per
// relayed datagram.
func TestRelayForwardZeroAlloc(t *testing.T) {
	s, conn := allocServer(t, Config{})
	wire := proto.Encode(&proto.Message{
		Type: proto.TypeRelayTo, From: "alice", Target: "bob",
		Seq: 7, Data: []byte("relay payload of plausible size, 48 bytes or so"),
	}, 0)
	src := clientEP("alice")
	before := conn.sent
	requireZeroAllocs(t, "relay forward", func() {
		conn.onRecv(src, wire)
	})
	if conn.sent == before || conn.lastTo != clientEP("bob") {
		t.Fatalf("relay did not forward (sent=%d, lastTo=%v)", conn.sent, conn.lastTo)
	}
	if s.Stats().RelayedMessages == 0 {
		t.Fatal("relay stats not counted")
	}
}

// TestRelayOnlyZeroAlloc runs the same gate in RelayOnly mode — the
// standalone relay tier deployment (relayapi).
func TestRelayOnlyZeroAlloc(t *testing.T) {
	_, conn := allocServer(t, Config{RelayOnly: true})
	wire := proto.Encode(&proto.Message{
		Type: proto.TypeRelayTo, From: "alice", Target: "bob",
		Seq: 9, Data: []byte("x"),
	}, 0)
	src := clientEP("alice")
	requireZeroAllocs(t, "relay-only forward", func() {
		conn.onRecv(src, wire)
	})
}

// TestFederatedRelayZeroAlloc pins the federated variant: the relayed
// message is encoded into the inner scratch and wrapped in a
// FedForward to the target's home server — still zero allocations.
func TestFederatedRelayZeroAlloc(t *testing.T) {
	s, conn := allocServer(t, Config{})
	home := inet.MustParseEndpoint("18.181.0.32:1234")
	s.reg.Put(Record{
		Name: "carol", Public: inet.MustParseEndpoint("204.16.1.9:7000"),
		Home: home, ExpiresAt: 0,
	})
	wire := proto.Encode(&proto.Message{
		Type: proto.TypeRelayTo, From: "alice", Target: "carol",
		Seq: 3, Data: []byte("cross-server relay"),
	}, 0)
	src := clientEP("alice")
	before := conn.sent
	requireZeroAllocs(t, "federated relay forward", func() {
		conn.onRecv(src, wire)
	})
	if conn.sent == before || conn.lastTo != home {
		t.Fatalf("federated relay did not route via home (lastTo=%v)", conn.lastTo)
	}
}

// TestForwarderZeroAlloc pins §3.2 step 2 — one ConnectRequest fans
// out two ConnectDetails — at zero allocations per request.
func TestForwarderZeroAlloc(t *testing.T) {
	_, conn := allocServer(t, Config{})
	wire := proto.Encode(&proto.Message{
		Type: proto.TypeConnectRequest, From: "alice", Target: "bob", Nonce: 42,
	}, 0)
	src := clientEP("alice")
	requireZeroAllocs(t, "connect-request forward", func() {
		conn.onRecv(src, wire)
	})
}

// TestKeepAliveZeroAlloc pins the §3.6 keep-alive refresh — the
// steady-state background load of every registered client.
func TestKeepAliveZeroAlloc(t *testing.T) {
	_, conn := allocServer(t, Config{})
	wire := proto.Encode(&proto.Message{
		Type: proto.TypeKeepAlive, From: "alice",
	}, 0)
	src := clientEP("alice")
	requireZeroAllocs(t, "keep-alive refresh", func() {
		conn.onRecv(src, wire)
	})
}

// TestSimTransportStillCopies pins the other side of the
// ScratchSender contract: without the capability, sendUDP must NOT
// reuse the scratch encoding, because such transports may retain the
// payload slice after SendTo returns.
func TestSimTransportStillCopies(t *testing.T) {
	conn := &retainingConn{local: inet.MustParseEndpoint("18.181.0.31:1234")}
	s, err := Serve(&stubTransport2{conn: conn}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.reuseEnc {
		t.Fatal("reuseEnc enabled for a conn without ScratchSendOK")
	}
	for _, name := range []string{"alice", "bob"} {
		wire := proto.Encode(&proto.Message{Type: proto.TypeRegister, From: name}, 0)
		conn.onRecv(clientEP(name), wire)
	}
	relay := func(seq uint32, data string) []byte {
		return proto.Encode(&proto.Message{
			Type: proto.TypeRelayTo, From: "alice", Target: "bob", Seq: seq, Data: []byte(data),
		}, 0)
	}
	conn.onRecv(clientEP("alice"), relay(1, "first"))
	first := conn.retained
	conn.onRecv(clientEP("alice"), relay(2, "second"))
	m, err := proto.Decode(first)
	if err != nil || m.Seq != 1 || string(m.Data) != "first" {
		t.Fatalf("retained payload corrupted by a later send: %+v %v", m, err)
	}
}

// retainingConn models the simulated transport: it keeps the payload
// slice (simnet queues packets referencing it) and deliberately lacks
// the ScratchSender capability.
type retainingConn struct {
	local    inet.Endpoint
	onRecv   func(from inet.Endpoint, payload []byte)
	retained []byte
}

func (c *retainingConn) Local() inet.Endpoint { return c.local }
func (c *retainingConn) OnRecv(fn func(from inet.Endpoint, payload []byte)) {
	c.onRecv = fn
}
func (c *retainingConn) SendTo(to inet.Endpoint, payload []byte) error {
	c.retained = payload
	return nil
}
func (c *retainingConn) Close() {}

type stubTransport2 struct {
	conn *retainingConn
}

func (t *stubTransport2) BindUDP(port inet.Port) (transport.UDPConn, error) { return t.conn, nil }
func (t *stubTransport2) After(d time.Duration, fn func()) transport.Timer  { return stubTimer{} }
func (t *stubTransport2) Now() time.Duration                                { return time.Second }
func (t *stubTransport2) Rand() *rand.Rand                                  { return rand.New(rand.NewSource(2)) }
func (t *stubTransport2) Invoke(fn func())                                  { fn() }
