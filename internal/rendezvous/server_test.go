package rendezvous_test

import (
	"testing"
	"time"

	"natpunch/internal/host"
	"natpunch/internal/inet"
	"natpunch/internal/nat"
	"natpunch/internal/proto"
	"natpunch/internal/rendezvous"
	"natpunch/internal/tcp"
	"natpunch/internal/topo"
)

// rawClient speaks the rendezvous protocol over a bare UDP socket so
// the server is tested without the punch client's logic.
type rawClient struct {
	sock *host.UDPSocket
	got  []*proto.Message
}

func newRawClient(t *testing.T, h *host.Host, port inet.Port) *rawClient {
	t.Helper()
	s, err := h.UDPBind(port)
	if err != nil {
		t.Fatal(err)
	}
	c := &rawClient{sock: s}
	s.OnRecv(func(_ inet.Endpoint, p []byte) {
		if m, err := proto.Decode(p); err == nil {
			c.got = append(c.got, m)
		}
	})
	return c
}

func (c *rawClient) send(server inet.Endpoint, m *proto.Message) {
	c.sock.SendTo(server, proto.Encode(m, 0))
}

func (c *rawClient) find(typ proto.Type) *proto.Message {
	for _, m := range c.got {
		if m.Type == typ {
			return m
		}
	}
	return nil
}

func TestRegistrationRecordsBothEndpoints(t *testing.T) {
	c := topo.NewCanonical(1, nat.Cone(), nat.Cone())
	srv, err := rendezvous.New(c.S, 1234, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := newRawClient(t, c.A, 4321)
	a.send(srv.Endpoint(), &proto.Message{
		Type: proto.TypeRegister, From: "alice", Private: a.sock.Local(),
	})
	c.RunFor(time.Second)

	ok := a.find(proto.TypeRegisterOK)
	if ok == nil {
		t.Fatal("no RegisterOK")
	}
	// §3.1: public endpoint from the headers (the NAT mapping),
	// private from the body.
	if ok.Public != inet.EP("155.99.25.11", 62000) {
		t.Errorf("public = %v", ok.Public)
	}
	if ok.Private != inet.EP("10.0.0.1", 4321) {
		t.Errorf("private = %v", ok.Private)
	}
	if !srv.Registered("alice") {
		t.Error("server does not know alice")
	}
}

func TestConnectDetailsGoToBothSides(t *testing.T) {
	c := topo.NewCanonical(1, nat.Cone(), nat.Cone())
	srv, err := rendezvous.New(c.S, 1234, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := newRawClient(t, c.A, 4321)
	b := newRawClient(t, c.B, 4321)
	a.send(srv.Endpoint(), &proto.Message{Type: proto.TypeRegister, From: "alice", Private: a.sock.Local()})
	b.send(srv.Endpoint(), &proto.Message{Type: proto.TypeRegister, From: "bob", Private: b.sock.Local()})
	c.RunFor(time.Second)

	a.send(srv.Endpoint(), &proto.Message{Type: proto.TypeConnectRequest, From: "alice", Target: "bob", Nonce: 77})
	c.RunFor(time.Second)

	da := a.find(proto.TypeConnectDetails)
	db := b.find(proto.TypeConnectDetails)
	if da == nil || db == nil {
		t.Fatal("details missing on one side")
	}
	if !da.Requester || db.Requester {
		t.Error("requester flags wrong")
	}
	if da.From != "bob" || db.From != "alice" || da.Nonce != 77 || db.Nonce != 77 {
		t.Errorf("details wrong: %+v / %+v", da, db)
	}
	// A learns B's endpoints and vice versa (§3.2 step 2).
	if da.Public != inet.EP("138.76.29.7", 62000) || da.Private != inet.EP("10.1.1.3", 4321) {
		t.Errorf("A's view of B: %v/%v", da.Public, da.Private)
	}
	if db.Public != inet.EP("155.99.25.11", 62000) {
		t.Errorf("B's view of A: %v", db.Public)
	}
}

func TestConnectUnknownTargetErrors(t *testing.T) {
	c := topo.NewCanonical(1, nat.Cone(), nat.Cone())
	srv, err := rendezvous.New(c.S, 1234, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := newRawClient(t, c.A, 4321)
	a.send(srv.Endpoint(), &proto.Message{Type: proto.TypeRegister, From: "alice", Private: a.sock.Local()})
	c.RunFor(time.Second)
	a.send(srv.Endpoint(), &proto.Message{Type: proto.TypeConnectRequest, From: "alice", Target: "ghost", Nonce: 1})
	c.RunFor(time.Second)
	if a.find(proto.TypeError) == nil {
		t.Error("no error for unknown target")
	}
	if srv.Stats().Errors == 0 {
		t.Error("error not counted")
	}
}

func TestUDPRelayPath(t *testing.T) {
	c := topo.NewCanonical(1, nat.Symmetric(), nat.Symmetric())
	srv, err := rendezvous.New(c.S, 1234, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := newRawClient(t, c.A, 4321)
	b := newRawClient(t, c.B, 4321)
	a.send(srv.Endpoint(), &proto.Message{Type: proto.TypeRegister, From: "alice", Private: a.sock.Local()})
	b.send(srv.Endpoint(), &proto.Message{Type: proto.TypeRegister, From: "bob", Private: b.sock.Local()})
	c.RunFor(time.Second)
	a.send(srv.Endpoint(), &proto.Message{Type: proto.TypeRelayTo, From: "alice", Target: "bob", Data: []byte("via S")})
	c.RunFor(time.Second)
	r := b.find(proto.TypeRelayed)
	if r == nil || string(r.Data) != "via S" || r.From != "alice" {
		t.Fatalf("relayed = %+v", r)
	}
	if srv.Stats().RelayedBytes != 5 {
		t.Errorf("relayed bytes = %d", srv.Stats().RelayedBytes)
	}
}

func TestKeepAliveRefreshesPublicEndpoint(t *testing.T) {
	// If the NAT expires a registration mapping, the next keep-alive
	// (through a fresh mapping) must update S's view.
	b := nat.Cone()
	b.UDPTimeout = 20 * time.Second
	c := topo.NewCanonical(1, b, nat.Cone())
	srv, err := rendezvous.New(c.S, 1234, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := newRawClient(t, c.A, 4321)
	bb := newRawClient(t, c.B, 4321)
	a.send(srv.Endpoint(), &proto.Message{Type: proto.TypeRegister, From: "alice", Private: a.sock.Local()})
	bb.send(srv.Endpoint(), &proto.Message{Type: proto.TypeRegister, From: "bob", Private: bb.sock.Local()})
	c.RunFor(time.Second)
	// Let alice's mapping die, then keep-alive through a new mapping.
	c.RunFor(time.Minute)
	a.send(srv.Endpoint(), &proto.Message{Type: proto.TypeKeepAlive, From: "alice"})
	c.RunFor(time.Second)
	// bob asks to connect; the details must carry alice's *new*
	// endpoint (62001, since 62000 expired).
	bb.send(srv.Endpoint(), &proto.Message{Type: proto.TypeConnectRequest, From: "bob", Target: "alice", Nonce: 9})
	c.RunFor(time.Second)
	d := bb.find(proto.TypeConnectDetails)
	if d == nil {
		t.Fatal("no details")
	}
	if d.Public == inet.EP("155.99.25.11", 62000) {
		t.Errorf("stale public endpoint %v delivered after keep-alive refresh", d.Public)
	}
}

func TestTCPRegistrationAndIntroduction(t *testing.T) {
	c := topo.NewCanonical(1, nat.Cone(), nat.Cone())
	srv, err := rendezvous.New(c.S, 1234, 0)
	if err != nil {
		t.Fatal(err)
	}
	var gotA []*proto.Message
	var decA proto.StreamDecoder
	connA, err := c.A.TCPDial(srv.Endpoint(), host.DialOpts{LocalPort: 4321, ReuseAddr: true}, tcp.Callbacks{
		Established: func(cn *tcp.Conn) {
			cn.Write(proto.AppendFrame(nil, &proto.Message{
				Type: proto.TypeRegister, From: "alice", Private: cn.Local(),
			}, 0))
		},
		Data: func(cn *tcp.Conn, p []byte) {
			ms, _ := decA.Feed(p)
			gotA = append(gotA, ms...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * time.Second)
	if len(gotA) == 0 || gotA[0].Type != proto.TypeRegisterOK {
		t.Fatalf("gotA = %+v", gotA)
	}
	if gotA[0].Public.Addr != inet.MustParseAddr("155.99.25.11") {
		t.Errorf("public = %v", gotA[0].Public)
	}
	if srv.Stats().RegistrationsTCP != 1 {
		t.Errorf("stats = %+v", srv.Stats())
	}
	connA.Close()
	c.RunFor(5 * time.Second)
}
