package rendezvous

import (
	"sort"

	"natpunch/internal/inet"
	"natpunch/internal/proto"
)

// Federation links multiple rendezvous servers into one logical S
// over the ordinary transport seam — no side channel, just three wire
// messages (proto.TypeFedHello/FedRecord/FedForward) on the same UDP
// socket clients use:
//
//   - every locally homed registration (and each §3.6 keep-alive
//     refresh) is replicated to all peers as a FedRecord, so every
//     server can resolve every name;
//   - any message bound for a remotely homed client is wrapped in a
//     FedForward to the client's home server, because a NATed client
//     is reachable only through the mapping it keeps open to its home
//     (§3.1) — introductions, candidate brokering, and §2.2 relaying
//     all route this way;
//   - TTLs run independently on each server, so a dead server's
//     clients age out of the survivors' registries and dials to them
//     fail fast until the clients re-home (client-side failover).
//
// Membership is operator-driven (Join / cmd/rendezvous -join); links
// are made bidirectional by the hello exchange. Like client
// registration itself, federation carries no authentication — the
// deployment's network perimeter is the trust boundary.

// Join links this server to a peer: the peer learns of us from the
// hello's source address, answers with its own hello, and both sides
// exchange a full sync of locally homed registrations.
func (s *Server) Join(peer inet.Endpoint) {
	if peer == s.Endpoint() || peer == s.udp.Local() {
		return
	}
	s.addFedPeer(peer)
	s.sendUDP(peer, &proto.Message{Type: proto.TypeFedHello})
	s.syncTo(peer)
}

// Peers returns the current federation peer set in join order.
func (s *Server) Peers() []inet.Endpoint {
	return append([]inet.Endpoint(nil), s.fedPeers...)
}

// addFedPeer records a peer, reporting whether it was new. Join order
// is preserved so replication fan-out is deterministic.
func (s *Server) addFedPeer(peer inet.Endpoint) bool {
	if s.fedSet[peer] {
		return false
	}
	s.fedSet[peer] = true
	s.fedPeers = append(s.fedPeers, peer)
	s.tracef("S: federated with %s (%d peers)", peer, len(s.fedPeers))
	return true
}

// handleFedHello answers a peer's hello: record the link, hello back
// if the peer was unknown (exactly once, so hellos cannot ping-pong),
// and sync our locally homed records over.
func (s *Server) handleFedHello(from inet.Endpoint) {
	if s.addFedPeer(from) {
		s.sendUDP(from, &proto.Message{Type: proto.TypeFedHello})
	}
	s.syncTo(from)
}

// handleFedRecord stores one replicated registration, homed at the
// sending server. Last writer wins: a client that re-homes (failover)
// is re-replicated by its new home and the stale claim is replaced.
func (s *Server) handleFedRecord(from inet.Endpoint, m *proto.Message) {
	s.addFedPeer(from)
	s.stats.FedRecords++
	s.reg.Put(Record{
		Name:      m.From,
		Public:    m.Public,
		Private:   m.Private,
		Home:      from,
		ExpiresAt: s.expiry(),
	})
}

// handleFedForward delivers the wrapped wire bytes to the locally
// homed target on behalf of a peer.
func (s *Server) handleFedForward(from inet.Endpoint, m *proto.Message) {
	s.addFedPeer(from)
	s.stats.FedForwards++
	rec, ok := s.reg.Get(m.Target, s.now())
	if !ok || !rec.Local() {
		s.stats.Errors++
		return
	}
	wire := m.Data
	if !s.reuseEnc {
		// m.Data is the decoder's reused buffer and the next datagram
		// overwrites it; a transport without ScratchSendOK (simnet)
		// queues the slice past SendTo, so it needs its own copy.
		wire = append([]byte(nil), wire...)
	}
	s.udp.SendTo(rec.Public, wire)
}

// fedForward wraps raw wire bytes for delivery to name via its home
// server. It reuses the scratch skeleton, so callers must be done
// with any message they built there (deliver encodes into fedScratch
// first for exactly this reason).
func (s *Server) fedForward(home inet.Endpoint, name string, wire []byte) {
	out := &s.scratchMsg
	*out = proto.Message{
		Type: proto.TypeFedForward, Target: name, Data: wire,
	}
	s.sendUDP(home, out)
}

// replicate pushes one locally homed record to every federation peer.
func (s *Server) replicate(rec Record) {
	if len(s.fedPeers) == 0 || !rec.Local() {
		return
	}
	m := &s.scratchMsg
	*m = proto.Message{
		Type: proto.TypeFedRecord, From: rec.Name,
		Public: rec.Public, Private: rec.Private,
	}
	for _, p := range s.fedPeers {
		s.sendUDP(p, m)
	}
}

// syncTo replays every locally homed registration to one peer, in
// name order so simulated runs stay bit-for-bit reproducible (map
// iteration order must never leak into the packet stream).
func (s *Server) syncTo(peer inet.Endpoint) {
	var local []Record
	s.reg.Range(s.now(), func(rec Record) bool {
		if rec.Local() {
			local = append(local, rec)
		}
		return true
	})
	sort.Slice(local, func(i, j int) bool { return local[i].Name < local[j].Name })
	for _, rec := range local {
		s.sendUDP(peer, &proto.Message{
			Type: proto.TypeFedRecord, From: rec.Name,
			Public: rec.Public, Private: rec.Private,
		})
	}
}
