package rendezvous_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"natpunch/internal/inet"
	"natpunch/internal/rendezvous"
)

func ep(i int) inet.Endpoint {
	return inet.Endpoint{Addr: inet.AddrFrom4(18, 181, 0, byte(30+i)), Port: 1234}
}

// TestOwnerStableAcrossShardCounts is the stable-hashing property:
// which *server* owns a name is a function of the name and the server
// set alone. Re-sharding any server's registry — 1-way to 64-way,
// grown or shrunk, records migrated or not — never re-homes a single
// client.
func TestOwnerStableAcrossShardCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	servers := []inet.Endpoint{ep(1), ep(2), ep(3), ep(4)}
	for trial := 0; trial < 500; trial++ {
		name := fmt.Sprintf("peer-%d-%x", trial, rng.Uint64())
		want := rendezvous.Owner(name, servers)
		for _, shards := range []int{1, 2, 4, 16, 64} {
			reg := rendezvous.NewShardedRegistry(shards)
			reg.Put(rendezvous.Record{Name: name, Public: ep(9)})
			if _, ok := reg.Get(name, 0); !ok {
				t.Fatalf("shards=%d lost %q", shards, name)
			}
			if got := rendezvous.Owner(name, servers); got != want {
				t.Fatalf("shards=%d changed owner of %q: %v != %v", shards, name, got, want)
			}
		}
	}
}

// TestPreferenceIsStablePermutation: Preference is a permutation of
// the input pool, deterministic, and a pure function of the *set* —
// supplying the pool in any order yields the identical preference
// list, so every participant agrees on homes and failover order.
func TestPreferenceIsStablePermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := []inet.Endpoint{ep(1), ep(2), ep(3), ep(4), ep(5)}
	for trial := 0; trial < 300; trial++ {
		name := fmt.Sprintf("n%x", rng.Uint64())
		want := rendezvous.Preference(name, pool)
		if len(want) != len(pool) {
			t.Fatalf("preference dropped members: %v", want)
		}
		seen := map[inet.Endpoint]bool{}
		for _, e := range want {
			seen[e] = true
		}
		if len(seen) != len(pool) {
			t.Fatalf("preference is not a permutation: %v", want)
		}
		if want[0] != rendezvous.Owner(name, pool) {
			t.Fatalf("preference head %v != owner %v", want[0], rendezvous.Owner(name, pool))
		}
		shuffled := append([]inet.Endpoint(nil), pool...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := rendezvous.Preference(name, shuffled); !reflect.DeepEqual(got, want) {
			t.Fatalf("pool order changed the preference:\n in order: %v\nshuffled: %v", want, got)
		}
	}
}

// TestOwnerMinimalReassignment: removing one server only re-homes the
// names it owned (rendezvous hashing's minimal-disruption property) —
// the reason failover churn is bounded by the dead server's share.
func TestOwnerMinimalReassignment(t *testing.T) {
	full := []inet.Endpoint{ep(1), ep(2), ep(3), ep(4)}
	without := []inet.Endpoint{ep(1), ep(2), ep(3)}
	moved, kept := 0, 0
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("peer%d", i)
		before := rendezvous.Owner(name, full)
		after := rendezvous.Owner(name, without)
		if before == ep(4) {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("%q re-homed from %v to %v though its owner survived", name, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// TestOwnerSpreadsNames sanity-checks the load-balancing claim the
// E-FED experiment measures: names spread over all pool members.
func TestOwnerSpreadsNames(t *testing.T) {
	pool := []inet.Endpoint{ep(1), ep(2), ep(3), ep(4)}
	counts := map[inet.Endpoint]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[rendezvous.Owner(fmt.Sprintf("peer%d", i), pool)]++
	}
	for _, e := range pool {
		share := float64(counts[e]) / n
		if share < 0.15 || share > 0.35 {
			t.Errorf("server %v owns %.1f%% of names; want roughly a quarter", e, share*100)
		}
	}
}

func TestShardedRegistryTTLBasics(t *testing.T) {
	reg := rendezvous.NewShardedRegistry(4)
	reg.Put(rendezvous.Record{Name: "a", Public: ep(1), ExpiresAt: 100})
	if _, ok := reg.Get("a", 99); !ok {
		t.Fatal("live record missing")
	}
	if _, ok := reg.Get("a", 101); ok {
		t.Fatal("expired record returned")
	}
	if _, ok := reg.Get("a", 99); ok {
		t.Fatal("expired record not evicted on first miss")
	}

	reg.Put(rendezvous.Record{Name: "b", Public: ep(1), ExpiresAt: 100})
	if !reg.Touch("b", ep(2), 200, 99) {
		t.Fatal("touch on live record failed")
	}
	rec, ok := reg.Get("b", 150)
	if !ok || rec.ExpiresAt != 200 || rec.Public != ep(2) {
		t.Fatalf("touch did not refresh: %+v ok=%v", rec, ok)
	}
	if reg.Touch("b", ep(3), 300, 250) {
		t.Fatal("touch revived an expired record")
	}
	if reg.Len(250) != 0 {
		t.Fatalf("Len = %d, want 0", reg.Len(250))
	}
}

// TestShardedRegistryConcurrent exercises the per-shard locking under
// parallel writers/readers (run with -race).
func TestShardedRegistryConcurrent(t *testing.T) {
	reg := rendezvous.NewShardedRegistry(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				name := fmt.Sprintf("p%d", i%64)
				reg.Put(rendezvous.Record{Name: name, Public: ep(w), ExpiresAt: time.Hour})
				reg.Get(name, time.Minute)
				reg.Touch(name, ep(w), 2*time.Hour, time.Minute)
				reg.Range(time.Minute, func(rendezvous.Record) bool { return true })
			}
		}(w)
	}
	wg.Wait()
	if n := reg.Len(time.Minute); n != 64 {
		t.Fatalf("Len = %d, want 64", n)
	}
}
