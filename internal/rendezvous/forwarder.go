package rendezvous

import (
	"natpunch/internal/inet"
	"natpunch/internal/proto"
)

// The forwarder service: §3.2 step 2's connection-request forwarding,
// §2.3 connection reversal, and §4.5 sequential-punch signalling.
// Each request resolves its target through the Registry (or the TCP
// client table) and delivers through the federation-aware deliver(),
// so the same code introduces peers homed on one server or on two.

// forwardDetails implements §3.2 step 2: "S replies to A with a
// message containing B's public and private endpoints. At the same
// time, S uses its session with B to send B a connection request
// message containing A's public and private endpoints." from is the
// observed source of A's request — authoritative for A's public
// endpoint (§3.1) and always reachable, since the request itself just
// traversed A's NAT.
func (s *Server) forwardDetails(from inet.Endpoint, m *proto.Message, viaTCP bool) {
	if viaTCP {
		a, aok := s.tcpc[m.From]
		b, bok := s.tcpc[m.Target]
		if !aok || !bok {
			s.fail(from, m, true)
			return
		}
		s.sendTCP(a, &proto.Message{
			Type: proto.TypeConnectDetails, From: m.Target, Target: m.From,
			Nonce: m.Nonce, Requester: true,
			Public: b.public, Private: b.private,
		})
		s.sendTCP(b, &proto.Message{
			Type: proto.TypeConnectDetails, From: m.From, Target: m.Target,
			Nonce: m.Nonce, Requester: false,
			Public: a.public, Private: a.private,
		})
		s.tracef("S: introduced %s <-> %s over TCP (nonce %d)", m.From, m.Target, m.Nonce)
		return
	}
	now := s.now()
	a, aok := s.reg.Get(m.From, now)
	b, bok := s.reg.Get(m.Target, now)
	if !aok || !bok {
		s.fail(from, m, false)
		return
	}
	// Both introductions go through the scratch skeleton sequentially:
	// sendUDP/deliver fully encode before returning, so the second
	// fill cannot clobber the first in flight.
	out := &s.scratchMsg
	*out = proto.Message{
		Type: proto.TypeConnectDetails, From: m.Target, Target: m.From,
		Nonce: m.Nonce, Requester: true,
		Public: b.Public, Private: b.Private,
	}
	s.sendUDP(from, out)
	*out = proto.Message{
		Type: proto.TypeConnectDetails, From: m.From, Target: m.Target,
		Nonce: m.Nonce, Requester: false,
		Public: from, Private: a.Private,
	}
	s.deliver(b, out)
	if s.Trace != nil {
		s.tracef("S: introduced %s <-> %s (nonce %d)", m.From, m.Target, m.Nonce)
	}
}

// reverse implements §2.3: B (who cannot be reached directly) relays
// a connection request through S asking the peer to attempt a
// "reverse" connection back to B.
func (s *Server) reverse(from inet.Endpoint, m *proto.Message) {
	out := &s.scratchMsg
	*out = proto.Message{
		Type: proto.TypeReverseRequest, From: m.From, Target: m.Target,
		Nonce: m.Nonce,
	}
	if b, ok := s.tcpc[m.Target]; ok {
		a, aok := s.tcpc[m.From]
		if !aok {
			s.stats.Errors++
			return
		}
		s.stats.ReversalRequests++
		out.Public, out.Private = a.public, a.private
		s.sendTCP(b, out)
		return
	}
	now := s.now()
	a, aok := s.reg.Get(m.From, now)
	b, bok := s.reg.Get(m.Target, now)
	if !aok || !bok {
		s.stats.Errors++
		return
	}
	s.stats.ReversalRequests++
	out.Public, out.Private = a.Public, a.Private
	if a.Local() {
		out.Public = from // observed, authoritative (§3.1)
	}
	s.deliver(b, out)
}

// seqSignal forwards sequential hole punching coordination (§4.5),
// attaching the sender's registered TCP endpoints. TCP-surface only.
func (s *Server) seqSignal(m *proto.Message) {
	b, ok := s.tcpc[m.Target]
	a, aok := s.tcpc[m.From]
	if !ok || !aok {
		s.stats.Errors++
		return
	}
	s.stats.SeqSignals++
	s.sendTCP(b, &proto.Message{
		Type: m.Type, From: m.From, Target: m.Target, Nonce: m.Nonce,
		Public: a.public, Private: a.private,
	})
}
