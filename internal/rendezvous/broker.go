package rendezvous

import (
	"natpunch/internal/inet"
	"natpunch/internal/proto"
)

// The broker service: candidate negotiation for the ICE-style engine
// (internal/ice) — the generalization of §3.2 step 2's endpoint
// exchange to full candidate lists.

// forwardCandidates brokers one candidate negotiation (UDP only):
// the requester's advertised candidates go to the target, and a
// candidate list synthesized from the target's registration comes
// back. S substitutes the endpoint it observes on the wire for any
// advertised public candidate, since the client's own idea of its
// public endpoint can be stale (§3.1 makes S authoritative for it).
// Cross-server negotiations route the target's copy through its home
// server; the observed-endpoint substitution still happens here,
// where the requester's datagram was actually seen.
func (s *Server) forwardCandidates(m *proto.Message, from inet.Endpoint) {
	now := s.now()
	a, aok := s.reg.Get(m.From, now)
	b, bok := s.reg.Get(m.Target, now)
	if !aok || !bok {
		s.fail(from, m, false)
		return
	}
	toA := &proto.Message{
		Type: proto.TypeNegotiateDetails, From: m.Target, Target: m.From,
		Nonce: m.Nonce, Requester: true,
		Public: b.Public, Private: b.Private,
		Candidates: registrationCandidates(b),
	}
	fromA := make([]proto.Candidate, 0, len(m.Candidates)+1)
	seenPublic := false
	for _, c := range m.Candidates {
		if c.Kind == proto.CandPublic {
			c.Endpoint = from // observed, authoritative (§3.1)
			seenPublic = true
		}
		fromA = append(fromA, c)
	}
	if !seenPublic {
		fromA = append(fromA, proto.Candidate{Kind: proto.CandPublic, Endpoint: from})
	}
	toB := &proto.Message{
		Type: proto.TypeNegotiateDetails, From: m.From, Target: m.Target,
		Nonce: m.Nonce, Requester: false,
		Public: from, Private: a.Private,
		Candidates: fromA,
	}
	s.sendUDP(from, toA)
	s.deliver(b, toB)
	s.tracef("S: negotiating %s <-> %s (nonce %d, %d candidates)",
		m.From, m.Target, m.Nonce, len(fromA))
}

// registrationCandidates synthesizes a candidate list from what the
// registry learned at registration: the self-reported private
// endpoint and the observed public one.
func registrationCandidates(rec Record) []proto.Candidate {
	cands := []proto.Candidate{{Kind: proto.CandPublic, Endpoint: rec.Public}}
	if !rec.Private.IsZero() && rec.Private != rec.Public {
		cands = append(cands, proto.Candidate{Kind: proto.CandPrivate, Endpoint: rec.Private})
	}
	return cands
}
