package rendezvous_test

import (
	"testing"
	"time"

	"natpunch/internal/host"
	"natpunch/internal/ice"
	"natpunch/internal/nat"
	"natpunch/internal/punch"
	"natpunch/internal/rendezvous"
	"natpunch/internal/topo"
)

// fedWorld is the Figure 5 scenario with the rendezvous tier split in
// two: alice's home is S1, bob's home is S2, and the servers are
// federated — the multi-server deployment shape of real systems
// (Skype supernodes, DCUtR relay fleets).
type fedWorld struct {
	*topo.Internet
	s1, s2 *rendezvous.Server
	a, b   *punch.Client
}

func newFedWorld(t *testing.T, seed int64, behA, behB nat.Behavior, cfg punch.Config, join bool) *fedWorld {
	t.Helper()
	in := topo.NewInternet(seed)
	core := in.CoreRealm()
	h1 := core.AddHost("S1", "18.181.0.31", host.BSDStyle)
	h2 := core.AddHost("S2", "18.181.0.32", host.BSDStyle)
	s1, err := rendezvous.New(h1, 1234, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := rendezvous.New(h2, 1234, 0)
	if err != nil {
		t.Fatal(err)
	}
	if join {
		s1.Join(s2.Endpoint())
	}
	realmA := core.AddSite("NAT-A", behA, "155.99.25.11", "10.0.0.0/24")
	realmB := core.AddSite("NAT-B", behB, "138.76.29.7", "10.1.1.0/24")
	w := &fedWorld{Internet: in, s1: s1, s2: s2}
	w.a = punch.NewClient(realmA.AddHost("A", "10.0.0.1", host.BSDStyle), "alice", s1.Endpoint(), cfg)
	w.b = punch.NewClient(realmB.AddHost("B", "10.1.1.3", host.BSDStyle), "bob", s2.Endpoint(), cfg)
	return w
}

func (w *fedWorld) register(t *testing.T) {
	t.Helper()
	if err := w.a.RegisterUDP(4321, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.b.RegisterUDP(4321, nil); err != nil {
		t.Fatal(err)
	}
	w.runUntil(t, 10*time.Second, func() bool {
		return w.a.UDPRegistered() && w.b.UDPRegistered()
	})
}

func (w *fedWorld) runUntil(t *testing.T, window time.Duration, cond func() bool) {
	t.Helper()
	deadline := w.Net.Sched.Now() + window
	w.Net.Sched.RunWhile(func() bool {
		return !cond() && w.Net.Sched.Now() < deadline
	})
	if !cond() {
		t.Fatal("condition not reached within window")
	}
}

// punchVia runs alice's dial toward bob and returns both sessions.
func (w *fedWorld) punchVia(t *testing.T, window time.Duration) (sa, sb *punch.UDPSession) {
	t.Helper()
	w.b.InboundUDP = punch.UDPCallbacks{Established: func(s *punch.UDPSession) { sb = s }}
	w.a.ConnectUDP("bob", punch.UDPCallbacks{
		Established: func(s *punch.UDPSession) { sa = s },
		Failed:      func(_ string, err error) { t.Errorf("punch failed: %v", err) },
	})
	w.runUntil(t, window, func() bool {
		return sa != nil && (sb != nil || sa.Via == punch.MethodRelay)
	})
	return sa, sb
}

// baselineVia runs the same behaviors against a single server and
// reports the outcome class — the equivalence oracle for federation.
func baselineVia(t *testing.T, seed int64, behA, behB nat.Behavior, cfg punch.Config) punch.Method {
	t.Helper()
	c := topo.NewCanonical(seed, behA, behB)
	srv, err := rendezvous.New(c.S, 1234, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := punch.NewClient(c.A, "alice", srv.Endpoint(), cfg)
	b := punch.NewClient(c.B, "bob", srv.Endpoint(), cfg)
	if err := a.RegisterUDP(4321, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.RegisterUDP(4321, nil); err != nil {
		t.Fatal(err)
	}
	var sa *punch.UDPSession
	done := false
	deadline := c.Net.Sched.Now() + 60*time.Second
	b.InboundUDP = punch.UDPCallbacks{}
	registered := func() bool { return a.UDPRegistered() && b.UDPRegistered() }
	c.Net.Sched.RunWhile(func() bool { return !registered() && c.Net.Sched.Now() < deadline })
	a.ConnectUDP("bob", punch.UDPCallbacks{
		Established: func(s *punch.UDPSession) { sa = s; done = true },
		Failed:      func(string, error) { done = true },
	})
	c.Net.Sched.RunWhile(func() bool { return !done && c.Net.Sched.Now() < deadline })
	if sa == nil {
		t.Fatal("baseline punch never resolved")
	}
	return sa.Via
}

// TestFederatedCrossServerPunchMatchesBaseline is the acceptance pin:
// a peer registered on S1 dials a peer registered on S2 and lands in
// the same direct/relay outcome class as the single-server baseline,
// and application data flows both ways.
func TestFederatedCrossServerPunchMatchesBaseline(t *testing.T) {
	cases := []struct {
		name       string
		behA, behB nat.Behavior
	}{
		{"cone<->cone", nat.Cone(), nat.Cone()},
		{"fullcone<->restricted", nat.FullCone(), nat.RestrictedCone()},
		{"symmetric<->symmetric", nat.Symmetric(), nat.Symmetric()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := punch.Config{RelayFallback: true, PunchTimeout: 3 * time.Second}
			base := baselineVia(t, 1, tc.behA, tc.behB, cfg)

			w := newFedWorld(t, 1, tc.behA, tc.behB, cfg, true)
			w.register(t)
			sa, sb := w.punchVia(t, 30*time.Second)
			if sa.Via != base {
				t.Fatalf("cross-server outcome %v != single-server baseline %v", sa.Via, base)
			}

			// Data both ways — through the punched path, or across the
			// federated relay (A relays via S1, B via S2).
			var gotA, gotB []byte
			sa.OnData(func(_ *punch.UDPSession, p []byte) { gotA = append([]byte(nil), p...) })
			if sb == nil {
				// Relay class: bob's side materializes on first data.
				w.b.InboundUDP = punch.UDPCallbacks{}
			} else {
				sb.OnData(func(_ *punch.UDPSession, p []byte) { gotB = append([]byte(nil), p...) })
			}
			sa.Send([]byte("ping"))
			if sb != nil {
				w.runUntil(t, 10*time.Second, func() bool { return gotB != nil })
				sb.Send([]byte("pong"))
				w.runUntil(t, 10*time.Second, func() bool { return gotA != nil })
				if string(gotA) != "pong" || string(gotB) != "ping" {
					t.Fatalf("payloads: a=%q b=%q", gotA, gotB)
				}
			}
		})
	}
}

// TestFederatedRelaySessionCrossServer pins the §2.2 fallback across
// the federation in both directions: each side relays through its own
// home server and the servers forward to each other.
func TestFederatedRelaySessionCrossServer(t *testing.T) {
	cfg := punch.Config{RelayFallback: true, PunchTimeout: 2 * time.Second}
	w := newFedWorld(t, 3, nat.Symmetric(), nat.Symmetric(), cfg, true)
	w.register(t)

	var sa *punch.UDPSession
	var gotA, gotB []byte
	w.b.InboundUDP = punch.UDPCallbacks{
		Data: func(s *punch.UDPSession, p []byte) {
			gotB = append([]byte(nil), p...)
			s.Send([]byte("pong"))
		},
	}
	w.a.ConnectUDP("bob", punch.UDPCallbacks{
		Established: func(s *punch.UDPSession) { sa = s },
		Data:        func(_ *punch.UDPSession, p []byte) { gotA = append([]byte(nil), p...) },
	})
	w.runUntil(t, 30*time.Second, func() bool { return sa != nil })
	if sa.Via != punch.MethodRelay {
		t.Fatalf("via = %v, want relay", sa.Via)
	}
	sa.Send([]byte("ping"))
	w.runUntil(t, 20*time.Second, func() bool { return gotA != nil && gotB != nil })
	if string(gotA) != "pong" || string(gotB) != "ping" {
		t.Fatalf("payloads: a=%q b=%q", gotA, gotB)
	}
	if w.s1.Stats().FedForwards == 0 && w.s2.Stats().FedForwards == 0 {
		t.Error("relay traffic never crossed the federation link")
	}
}

// TestFederatedICENegotiationCrossServer pins candidate brokering
// across servers: the offer goes to alice's home, the synthesized
// answer and forwarded offer route through bob's home, and the
// engines converge on a direct path.
func TestFederatedICENegotiationCrossServer(t *testing.T) {
	cfg := punch.Config{RelayFallback: true, PunchTimeout: 5 * time.Second}
	w := newFedWorld(t, 5, nat.Cone(), nat.Cone(), cfg, true)
	agA, agB := ice.New(w.a, ice.Config{}), ice.New(w.b, ice.Config{})
	w.register(t)

	var sa *punch.UDPSession
	var chosen ice.Candidate
	agB.Inbound = ice.Callbacks{}
	agA.Connect("bob", ice.Callbacks{
		Established: func(s *punch.UDPSession, c ice.Candidate) { sa, chosen = s, c },
		Failed:      func(_ string, err error) { t.Errorf("negotiation failed: %v", err) },
	})
	w.runUntil(t, 30*time.Second, func() bool { return sa != nil })
	if chosen.Kind == ice.KindRelay {
		t.Fatalf("cone<->cone nominated relay; want a direct candidate")
	}
	if w.s2.Stats().FedForwards == 0 {
		t.Error("bob's offer copy never routed through his home server")
	}
	if w.s1.Stats().NegotiateRequests == 0 {
		t.Error("alice's home never brokered the negotiation")
	}
}

// TestFederationSyncOnJoin pins that joining replays existing
// registrations: clients registered before the link comes up are
// dialable across it immediately after.
func TestFederationSyncOnJoin(t *testing.T) {
	cfg := punch.Config{}
	w := newFedWorld(t, 7, nat.Cone(), nat.Cone(), cfg, false)
	w.register(t)
	if w.s1.Registered("bob") || w.s2.Registered("alice") {
		t.Fatal("records leaked across servers before any join")
	}
	w.s1.Join(w.s2.Endpoint())
	w.runUntil(t, 5*time.Second, func() bool {
		return w.s1.Registered("bob") && w.s2.Registered("alice")
	})
	if len(w.s1.Peers()) != 1 || len(w.s2.Peers()) != 1 {
		t.Fatalf("peer sets: s1=%v s2=%v", w.s1.Peers(), w.s2.Peers())
	}
	sa, _ := w.punchVia(t, 30*time.Second)
	if sa.Via == punch.MethodRelay {
		t.Fatalf("cone<->cone relayed after join sync")
	}
}
