// Package rendezvous implements the well-known server S of the paper:
// clients register over UDP and TCP, S records each client's private
// endpoint (reported by the client in its registration body) and
// public endpoint (observed from the packet/connection source, §3.1),
// forwards connection requests carrying both endpoints to both peers
// (§3.2 step 2), relays application data as the fallback of §2.2, and
// forwards reversal (§2.3) and sequential-punch (§4.5) signals.
package rendezvous

import (
	"time"

	"natpunch/internal/host"
	"natpunch/internal/inet"
	"natpunch/internal/proto"
	"natpunch/internal/tcp"
	"natpunch/transport"
)

// Stats counts server activity, including the relay load that makes
// pure relaying unattractive (§2.2: "consumes the server's processing
// power and network bandwidth").
type Stats struct {
	RegistrationsUDP uint64
	RegistrationsTCP uint64
	ConnectRequests  uint64
	// NegotiateRequests counts candidate negotiations brokered for the
	// ICE-style engine (internal/ice).
	NegotiateRequests uint64
	RelayedMessages   uint64
	RelayedBytes      uint64
	ReversalRequests  uint64
	SeqSignals        uint64
	Errors            uint64
}

// client is S's record of one registered client (§3.1: both endpoint
// pairs).
type client struct {
	name string

	udpSeen    bool
	udpPublic  inet.Endpoint
	udpPrivate inet.Endpoint

	tcpConn    *tcp.Conn
	tcpDec     proto.StreamDecoder
	tcpPublic  inet.Endpoint
	tcpPrivate inet.Endpoint
}

// Server is the rendezvous server S.
type Server struct {
	tr transport.Transport
	// h is the simulated host when the transport provides one; over
	// UDP-only transports (real sockets) it is nil and the TCP
	// registration surface is absent.
	h    *host.Host
	port inet.Port
	obf  proto.Obfuscator

	udp      transport.UDPConn
	listener *host.TCPListener
	clients  map[string]*client
	stats    Stats

	// Trace, if set, receives one line per handled message.
	Trace func(format string, args ...any)
}

// New starts a rendezvous server on simulated host h at port (UDP and
// TCP).
func New(h *host.Host, port inet.Port, obf proto.Obfuscator) (*Server, error) {
	return NewOver(h.Transport(), port, obf)
}

// NewOver starts a rendezvous server over an arbitrary transport at
// port. UDP service — registration, endpoint exchange, candidate
// negotiation, relaying — works on any transport; the TCP side is
// bound only when the transport carries the full simulated host
// stack.
func NewOver(tr transport.Transport, port inet.Port, obf proto.Obfuscator) (*Server, error) {
	s := &Server{tr: tr, port: port, obf: obf, clients: make(map[string]*client)}
	if hp, ok := tr.(interface{ SimHost() *host.Host }); ok {
		s.h = hp.SimHost()
	}
	u, err := tr.BindUDP(port)
	if err != nil {
		return nil, err
	}
	s.udp = u
	s.port = u.Local().Port
	u.OnRecv(s.handleUDP)
	if s.h != nil {
		l, err := s.h.TCPListen(s.port, false, s.handleAccept)
		if err != nil {
			u.Close()
			return nil, err
		}
		s.listener = l
	}
	return s, nil
}

// Endpoint returns S's public endpoint (same port for UDP and TCP).
func (s *Server) Endpoint() inet.Endpoint { return s.udp.Local() }

// Close releases the server's sockets.
func (s *Server) Close() {
	s.udp.Close()
	if s.listener != nil {
		s.listener.Close()
	}
}

// Stats returns a copy of the counters.
func (s *Server) Stats() Stats { return s.stats }

// Registered reports whether a client name is known (via either
// transport).
func (s *Server) Registered(name string) bool {
	_, ok := s.clients[name]
	return ok
}

func (s *Server) tracef(format string, args ...any) {
	if s.Trace != nil {
		s.Trace(format, args...)
	}
}

func (s *Server) lookup(name string) *client {
	c := s.clients[name]
	if c == nil {
		c = &client{name: name}
		s.clients[name] = c
	}
	return c
}

// --- UDP transport ---

func (s *Server) handleUDP(from inet.Endpoint, payload []byte) {
	m, err := proto.Decode(payload)
	if err != nil {
		return // stray traffic; §3.4 says endpoints must expect it
	}
	s.tracef("S/udp <- %s from=%s(%s)", m.Type, m.From, from)
	switch m.Type {
	case proto.TypeRegister:
		c := s.lookup(m.From)
		c.udpSeen = true
		c.udpPublic = from       // observed from the packet header (§3.1)
		c.udpPrivate = m.Private // reported by the client itself
		s.stats.RegistrationsUDP++
		s.sendUDP(from, &proto.Message{
			Type: proto.TypeRegisterOK, Target: m.From,
			Public:  from,
			Private: c.udpPrivate,
		})

	case proto.TypeConnectRequest:
		s.stats.ConnectRequests++
		s.forwardDetails(m, false)

	case proto.TypeNegotiate:
		s.stats.NegotiateRequests++
		s.forwardCandidates(m, from)

	case proto.TypeRelayTo:
		s.relay(m)

	case proto.TypeReverseRequest:
		s.reverse(m)

	case proto.TypeSeqRequest, proto.TypeSeqGo:
		s.seqSignal(m)

	case proto.TypeKeepAlive:
		// Refresh the registration's public endpoint (it can change
		// if the NAT expired the mapping).
		if c, ok := s.clients[m.From]; ok && c.udpSeen {
			c.udpPublic = from
		}
	}
}

func (s *Server) sendUDP(to inet.Endpoint, m *proto.Message) {
	s.udp.SendTo(to, proto.Encode(m, s.obf))
}

// --- TCP transport ---

func (s *Server) handleAccept(conn *tcp.Conn) {
	// The client is identified once its Register frame arrives.
	var dec proto.StreamDecoder
	var owner *client
	conn.OnData(func(cn *tcp.Conn, p []byte) {
		msgs, err := dec.Feed(p)
		if err != nil {
			cn.Abort()
			return
		}
		for _, m := range msgs {
			owner = s.handleTCPMessage(cn, &dec, owner, m)
		}
	})
	conn.OnClosed(func(cn *tcp.Conn) {
		if owner != nil && owner.tcpConn == cn {
			owner.tcpConn = nil
		}
	})
}

func (s *Server) handleTCPMessage(conn *tcp.Conn, dec *proto.StreamDecoder, owner *client, m *proto.Message) *client {
	s.tracef("S/tcp <- %s from=%s(%s)", m.Type, m.From, conn.Remote())
	switch m.Type {
	case proto.TypeRegister:
		c := s.lookup(m.From)
		c.tcpConn = conn
		c.tcpPublic = conn.Remote() // observed (§3.1)
		c.tcpPrivate = m.Private
		s.stats.RegistrationsTCP++
		s.sendTCP(c, &proto.Message{
			Type: proto.TypeRegisterOK, Target: m.From,
			Public:  conn.Remote(),
			Private: c.tcpPrivate,
		})
		return c

	case proto.TypeConnectRequest:
		s.stats.ConnectRequests++
		s.forwardDetails(m, true)

	case proto.TypeRelayTo:
		s.relay(m)

	case proto.TypeReverseRequest:
		s.reverse(m)

	case proto.TypeSeqRequest, proto.TypeSeqGo:
		s.seqSignal(m)

	case proto.TypeKeepAlive:
		// Registration-connection keep-alive (§3.6): the traffic
		// itself refreshes NAT state on the path; nothing to record.
	}
	return owner
}

func (s *Server) sendTCP(c *client, m *proto.Message) {
	if c.tcpConn == nil {
		return
	}
	c.tcpConn.Write(proto.AppendFrame(nil, m, s.obf))
}

// --- request handling common to both transports ---

// forwardDetails implements §3.2 step 2: "S replies to A with a
// message containing B's public and private endpoints. At the same
// time, S uses its session with B to send B a connection request
// message containing A's public and private endpoints."
func (s *Server) forwardDetails(m *proto.Message, viaTCP bool) {
	a, aok := s.clients[m.From]
	b, bok := s.clients[m.Target]
	if !aok || !bok || !s.reachable(b, viaTCP) || !s.reachable(a, viaTCP) {
		s.fail(m, viaTCP)
		return
	}
	toA := &proto.Message{
		Type: proto.TypeConnectDetails, From: m.Target, Target: m.From,
		Nonce: m.Nonce, Requester: true,
	}
	toB := &proto.Message{
		Type: proto.TypeConnectDetails, From: m.From, Target: m.Target,
		Nonce: m.Nonce, Requester: false,
	}
	if viaTCP {
		toA.Public, toA.Private = b.tcpPublic, b.tcpPrivate
		toB.Public, toB.Private = a.tcpPublic, a.tcpPrivate
		s.sendTCP(a, toA)
		s.sendTCP(b, toB)
	} else {
		toA.Public, toA.Private = b.udpPublic, b.udpPrivate
		toB.Public, toB.Private = a.udpPublic, a.udpPrivate
		s.sendUDP(a.udpPublic, toA)
		s.sendUDP(b.udpPublic, toB)
	}
	s.tracef("S: introduced %s <-> %s (nonce %d)", m.From, m.Target, m.Nonce)
}

// forwardCandidates brokers one candidate negotiation (UDP only):
// the requester's advertised candidates go to the target, and a
// candidate list synthesized from the target's registration comes
// back — the ICE-style generalization of §3.2 step 2's endpoint
// exchange. S substitutes the endpoint it observes on the wire for
// any advertised public candidate, since the client's own idea of its
// public endpoint can be stale (§3.1 makes S authoritative for it).
func (s *Server) forwardCandidates(m *proto.Message, from inet.Endpoint) {
	a, aok := s.clients[m.From]
	b, bok := s.clients[m.Target]
	if !aok || !bok || !a.udpSeen || !b.udpSeen {
		s.fail(m, false)
		return
	}
	toA := &proto.Message{
		Type: proto.TypeNegotiateDetails, From: m.Target, Target: m.From,
		Nonce: m.Nonce, Requester: true,
		Public: b.udpPublic, Private: b.udpPrivate,
		Candidates: registrationCandidates(b),
	}
	fromA := make([]proto.Candidate, 0, len(m.Candidates)+1)
	seenPublic := false
	for _, c := range m.Candidates {
		if c.Kind == proto.CandPublic {
			c.Endpoint = from // observed, authoritative (§3.1)
			seenPublic = true
		}
		fromA = append(fromA, c)
	}
	if !seenPublic {
		fromA = append(fromA, proto.Candidate{Kind: proto.CandPublic, Endpoint: from})
	}
	toB := &proto.Message{
		Type: proto.TypeNegotiateDetails, From: m.From, Target: m.Target,
		Nonce: m.Nonce, Requester: false,
		Public: from, Private: a.udpPrivate,
		Candidates: fromA,
	}
	s.sendUDP(a.udpPublic, toA)
	s.sendUDP(b.udpPublic, toB)
	s.tracef("S: negotiating %s <-> %s (nonce %d, %d candidates)",
		m.From, m.Target, m.Nonce, len(fromA))
}

// registrationCandidates synthesizes a candidate list from what S
// learned at registration: the self-reported private endpoint and the
// observed public one.
func registrationCandidates(c *client) []proto.Candidate {
	cands := []proto.Candidate{{Kind: proto.CandPublic, Endpoint: c.udpPublic}}
	if !c.udpPrivate.IsZero() && c.udpPrivate != c.udpPublic {
		cands = append(cands, proto.Candidate{Kind: proto.CandPrivate, Endpoint: c.udpPrivate})
	}
	return cands
}

func (s *Server) reachable(c *client, viaTCP bool) bool {
	if viaTCP {
		return c.tcpConn != nil
	}
	return c.udpSeen
}

func (s *Server) fail(m *proto.Message, viaTCP bool) {
	s.stats.Errors++
	e := &proto.Message{Type: proto.TypeError, Target: m.From, From: m.Target}
	if viaTCP {
		if a, ok := s.clients[m.From]; ok {
			s.sendTCP(a, e)
		}
		return
	}
	if a, ok := s.clients[m.From]; ok && a.udpSeen {
		s.sendUDP(a.udpPublic, e)
	}
}

// relay implements the §2.2 fallback: S forwards the payload to the
// target over the target's registered session.
func (s *Server) relay(m *proto.Message) {
	b, ok := s.clients[m.Target]
	if !ok {
		s.stats.Errors++
		return
	}
	if m.Seq != 0 || len(m.Data) > 0 {
		// Empty Seq-0 relays are §3.6 keep-alives, not the relay load
		// §2.2 warns about; forward them but keep the stats honest.
		s.stats.RelayedMessages++
		s.stats.RelayedBytes += uint64(len(m.Data))
	}
	out := &proto.Message{
		Type: proto.TypeRelayed, From: m.From, Target: m.Target,
		Seq: m.Seq, Data: m.Data,
	}
	if b.tcpConn != nil && !b.udpSeen {
		s.sendTCP(b, out)
		return
	}
	if b.udpSeen {
		s.sendUDP(b.udpPublic, out)
	} else {
		s.sendTCP(b, out)
	}
}

// reverse implements §2.3: B (who cannot be reached directly) relays
// a connection request through S asking the peer to attempt a
// "reverse" connection back to B.
func (s *Server) reverse(m *proto.Message) {
	b, ok := s.clients[m.Target]
	a, aok := s.clients[m.From]
	if !ok || !aok {
		s.stats.Errors++
		return
	}
	s.stats.ReversalRequests++
	out := &proto.Message{
		Type: proto.TypeReverseRequest, From: m.From, Target: m.Target,
		Nonce: m.Nonce,
	}
	if b.tcpConn != nil {
		out.Public, out.Private = a.tcpPublic, a.tcpPrivate
		s.sendTCP(b, out)
		return
	}
	out.Public, out.Private = a.udpPublic, a.udpPrivate
	if b.udpSeen {
		s.sendUDP(b.udpPublic, out)
	}
}

// seqSignal forwards sequential hole punching coordination (§4.5),
// attaching the sender's registered TCP endpoints.
func (s *Server) seqSignal(m *proto.Message) {
	b, ok := s.clients[m.Target]
	a, aok := s.clients[m.From]
	if !ok || !aok || b.tcpConn == nil {
		s.stats.Errors++
		return
	}
	s.stats.SeqSignals++
	out := &proto.Message{
		Type: m.Type, From: m.From, Target: m.Target, Nonce: m.Nonce,
		Public: a.tcpPublic, Private: a.tcpPrivate,
	}
	s.sendTCP(b, out)
}

// KeepAliveInterval is how often idle clients should ping S to keep
// their registration's NAT mapping alive (§3.6).
const KeepAliveInterval = 15 * time.Second
