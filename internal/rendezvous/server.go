// Package rendezvous implements the well-known server S of the paper
// (§3.1) as a composition of small services sharing one wire surface:
//
//   - a pluggable Registry (registry.go) stores client registrations
//     — §3.1's endpoint pairs — with §3.6 TTL eviction, sharded for
//     concurrent scaling by default;
//   - the forwarder (forwarder.go) implements §3.2 step 2's
//     connection-request forwarding plus reversal (§2.3) and
//     sequential-punch signalling (§4.5);
//   - the broker (broker.go) runs candidate negotiation for the
//     ICE-style engine (internal/ice);
//   - the relay (relay.go) is the §2.2 always-works fallback, also
//     servable on dedicated hosts as a standalone relay service
//     (Config.RelayOnly, package natpunch/relayapi);
//   - federation (federation.go) links multiple S instances over the
//     ordinary transport seam, replicating registrations and routing
//     deliveries through each client's home server, so a peer
//     registered on S1 can dial, negotiate with, and relay to a peer
//     registered on S2.
package rendezvous

import (
	"time"

	"natpunch/internal/host"
	"natpunch/internal/inet"
	"natpunch/internal/proto"
	"natpunch/internal/tcp"
	"natpunch/transport"
)

// Stats counts server activity, including the relay load that makes
// pure relaying unattractive (§2.2: "consumes the server's processing
// power and network bandwidth").
type Stats struct {
	RegistrationsUDP uint64
	RegistrationsTCP uint64
	ConnectRequests  uint64
	// NegotiateRequests counts candidate negotiations brokered for the
	// ICE-style engine (internal/ice).
	NegotiateRequests uint64
	RelayedMessages   uint64
	RelayedBytes      uint64
	ReversalRequests  uint64
	SeqSignals        uint64
	Errors            uint64
	// FedRecords counts replicated registrations received from
	// federation peers; FedForwards counts federated deliveries
	// executed on behalf of peers.
	FedRecords  uint64
	FedForwards uint64
}

// Add returns the field-wise sum of two stat snapshots, for
// aggregating multi-server deployments.
func (s Stats) Add(o Stats) Stats {
	s.RegistrationsUDP += o.RegistrationsUDP
	s.RegistrationsTCP += o.RegistrationsTCP
	s.ConnectRequests += o.ConnectRequests
	s.NegotiateRequests += o.NegotiateRequests
	s.RelayedMessages += o.RelayedMessages
	s.RelayedBytes += o.RelayedBytes
	s.ReversalRequests += o.ReversalRequests
	s.SeqSignals += o.SeqSignals
	s.Errors += o.Errors
	s.FedRecords += o.FedRecords
	s.FedForwards += o.FedForwards
	return s
}

// DefaultTTL is how long a registration lives without a §3.6
// keep-alive refreshing it. Generous against the engine's 15s default
// keep-alive pace, but finite: a client that dies without teardown
// stops being dialable instead of receiving forwards forever.
const DefaultTTL = 2 * time.Minute

// Config shapes one server. The zero value serves the full rendezvous
// surface with a fresh DefaultShards-way registry and DefaultTTL.
type Config struct {
	// Port is the UDP (and, over simulated hosts, TCP) service port;
	// 0 takes an ephemeral port.
	Port inet.Port
	// Obf is the endpoint obfuscation mode for outgoing messages.
	Obf proto.Obfuscator
	// Registry is the registration store; nil builds a private
	// NewShardedRegistry(DefaultShards). Supplying one allows sharing
	// a store between servers or plugging an external backend.
	Registry Registry
	// TTL bounds a registration's life between keep-alives. 0 takes
	// DefaultTTL; negative disables expiry.
	TTL time.Duration
	// Advertise, when non-zero, is the endpoint Endpoint() reports —
	// the operator-routable address of a wildcard-bound server.
	Advertise inet.Endpoint
	// RelayOnly restricts the served surface to registration,
	// keep-alives, and §2.2 relaying — the standalone relay service
	// deployable on its own hosts (package natpunch/relayapi).
	RelayOnly bool
	// Peers lists federation peers to Join at startup (adapters
	// consume this; rendezvous.Serve itself leaves joining to the
	// caller so it happens inside the right transport context).
	Peers []inet.Endpoint
}

// tcpClient is S's record of one client registered over the TCP
// surface (simulated hosts only; §4's procedures).
type tcpClient struct {
	name    string
	conn    *tcp.Conn
	public  inet.Endpoint
	private inet.Endpoint
}

// Server is the rendezvous server S.
type Server struct {
	tr  transport.Transport
	cfg Config
	// h is the simulated host when the transport provides one; over
	// UDP-only transports (real sockets) it is nil and the TCP
	// registration surface is absent.
	h    *host.Host
	port inet.Port
	obf  proto.Obfuscator

	udp      transport.UDPConn
	listener *host.TCPListener
	reg      Registry
	tcpc     map[string]*tcpClient

	// Federation link state (federation.go). fedPeers preserves join
	// order so replication fan-out is deterministic.
	fedPeers []inet.Endpoint
	fedSet   map[inet.Endpoint]bool

	// Zero-alloc hot path state. dec decodes every UDP datagram into
	// one reused Message, interning client names (safe to retain in
	// registry records). scratchMsg is the reused outgoing-message
	// skeleton; enc and fedScratch are the encode buffers — separate,
	// because a federated delivery encodes the inner message
	// (fedScratch) and then the FedForward wrapper around it (enc).
	// Scratch encoding is only enabled when the transport conn
	// declares transport.ScratchSender (reuseEnc); the simulated
	// transport retains sent payloads, so it gets fresh encodings.
	dec        proto.Decoder
	scratchMsg proto.Message
	enc        []byte
	fedScratch []byte
	reuseEnc   bool

	stats Stats

	// Trace, if set, receives one line per handled message.
	Trace func(format string, args ...any)
}

// New starts a rendezvous server on simulated host h at port (UDP and
// TCP).
func New(h *host.Host, port inet.Port, obf proto.Obfuscator) (*Server, error) {
	return NewOver(h.Transport(), port, obf)
}

// NewOver starts a rendezvous server over an arbitrary transport at
// port with default registry and TTL.
func NewOver(tr transport.Transport, port inet.Port, obf proto.Obfuscator) (*Server, error) {
	return Serve(tr, Config{Port: port, Obf: obf})
}

// Serve starts a rendezvous server over tr with explicit
// configuration. UDP service — registration, endpoint exchange,
// candidate negotiation, relaying, federation — works on any
// transport; the TCP side is bound only when the transport carries
// the full simulated host stack.
func Serve(tr transport.Transport, cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		cfg.Registry = NewShardedRegistry(DefaultShards)
	}
	if cfg.TTL == 0 {
		cfg.TTL = DefaultTTL
	}
	s := &Server{
		tr: tr, cfg: cfg, port: cfg.Port, obf: cfg.Obf,
		reg:    cfg.Registry,
		tcpc:   make(map[string]*tcpClient),
		fedSet: make(map[inet.Endpoint]bool),
	}
	if hp, ok := tr.(interface{ SimHost() *host.Host }); ok {
		s.h = hp.SimHost()
	}
	u, err := tr.BindUDP(s.port)
	if err != nil {
		return nil, err
	}
	s.udp = u
	s.port = u.Local().Port
	if ss, ok := u.(transport.ScratchSender); ok && ss.ScratchSendOK() {
		s.reuseEnc = true
	}
	u.OnRecv(s.handleUDP)
	if s.h != nil && !cfg.RelayOnly {
		l, err := s.h.TCPListen(s.port, false, s.handleAccept)
		if err != nil {
			u.Close()
			return nil, err
		}
		s.listener = l
	}
	return s, nil
}

// Endpoint returns the endpoint clients should dial: the configured
// advertised endpoint when set (wildcard-bound real sockets report
// 0.0.0.0 otherwise), else the bound endpoint.
func (s *Server) Endpoint() inet.Endpoint {
	if !s.cfg.Advertise.IsZero() {
		return s.cfg.Advertise
	}
	return s.udp.Local()
}

// BoundEndpoint returns the transport-reported bound endpoint,
// regardless of any advertised override.
func (s *Server) BoundEndpoint() inet.Endpoint { return s.udp.Local() }

// Close releases the server's sockets.
func (s *Server) Close() {
	s.udp.Close()
	if s.listener != nil {
		s.listener.Close()
	}
}

// Stats returns a copy of the counters.
func (s *Server) Stats() Stats { return s.stats }

// Registry returns the server's registration store.
func (s *Server) Registry() Registry { return s.reg }

// Registered reports whether a client name is live (on either
// transport surface, homed anywhere in the federation).
func (s *Server) Registered(name string) bool {
	if _, ok := s.reg.Get(name, s.now()); ok {
		return true
	}
	_, ok := s.tcpc[name]
	return ok
}

func (s *Server) now() time.Duration { return s.tr.Now() }

// expiry computes the registry deadline for a registration refreshed
// now (§3.6 keep-alives push it forward).
func (s *Server) expiry() time.Duration {
	if s.cfg.TTL < 0 {
		return 0
	}
	return s.now() + s.cfg.TTL
}

func (s *Server) tracef(format string, args ...any) {
	if s.Trace != nil {
		s.Trace(format, args...)
	}
}

// --- UDP transport ---

func (s *Server) handleUDP(from inet.Endpoint, payload []byte) {
	m, err := s.dec.Decode(payload)
	if err != nil {
		return // stray traffic; §3.4 says endpoints must expect it
	}
	if s.Trace != nil { // guarded: the variadic call itself allocates
		s.tracef("S/udp <- %s from=%s(%s)", m.Type, m.From, from)
	}
	if s.cfg.RelayOnly {
		switch m.Type {
		case proto.TypeRegister:
			s.registerUDP(from, m)
		case proto.TypeKeepAlive:
			s.keepAliveUDP(from, m)
		case proto.TypeRelayTo:
			s.relay(m)
		}
		return // everything else is out of scope for a pure relay
	}
	switch m.Type {
	case proto.TypeRegister:
		s.registerUDP(from, m)

	case proto.TypeConnectRequest:
		s.stats.ConnectRequests++
		s.forwardDetails(from, m, false)

	case proto.TypeNegotiate:
		s.stats.NegotiateRequests++
		s.forwardCandidates(m, from)

	case proto.TypeRelayTo:
		s.relay(m)

	case proto.TypeReverseRequest:
		s.reverse(from, m)

	case proto.TypeSeqRequest, proto.TypeSeqGo:
		s.seqSignal(m)

	case proto.TypeKeepAlive:
		s.keepAliveUDP(from, m)

	case proto.TypeFedHello:
		s.handleFedHello(from)

	case proto.TypeFedRecord:
		s.handleFedRecord(from, m)

	case proto.TypeFedForward:
		s.handleFedForward(from, m)
	}
}

// registerUDP implements §3.1: record the observed public endpoint
// (from the packet header) and the self-reported private one, start
// the TTL, echo both back, and replicate to federation peers.
func (s *Server) registerUDP(from inet.Endpoint, m *proto.Message) {
	rec := Record{
		Name:      m.From,
		Public:    from,      // observed from the packet header (§3.1)
		Private:   m.Private, // reported by the client itself
		ExpiresAt: s.expiry(),
	}
	s.reg.Put(rec)
	s.stats.RegistrationsUDP++
	out := &s.scratchMsg
	*out = proto.Message{
		Type: proto.TypeRegisterOK, Target: m.From,
		Public:  from,
		Private: rec.Private,
	}
	s.sendUDP(from, out)
	s.replicate(rec)
}

// keepAliveUDP implements §3.6 on the registration session: refresh
// the record's TTL and public endpoint (the NAT may have expired the
// old mapping), ack so clients can tell a live server from a dead one
// (the facade's failover signal), and replicate the refresh.
func (s *Server) keepAliveUDP(from inet.Endpoint, m *proto.Message) {
	if !s.reg.Touch(m.From, from, s.expiry(), s.now()) {
		return // unknown or expired; the client's refresh cycle re-registers
	}
	out := &s.scratchMsg
	*out = proto.Message{
		Type: proto.TypeRegisterOK, Target: m.From, Public: from,
	}
	s.sendUDP(from, out)
	if rec, ok := s.reg.Get(m.From, s.now()); ok && rec.Local() {
		s.replicate(rec)
	}
}

// sendUDP encodes and transmits one message. When the transport conn
// releases payloads before SendTo returns (reuseEnc), the encoding
// goes into the reused scratch buffer — the forward/relay hot path is
// then allocation-free; otherwise (simulated transports, which queue
// the payload slice) it allocates a fresh encoding.
func (s *Server) sendUDP(to inet.Endpoint, m *proto.Message) {
	if s.reuseEnc {
		s.enc = proto.AppendMessage(s.enc[:0], m, s.obf)
		s.udp.SendTo(to, s.enc)
		return
	}
	s.udp.SendTo(to, proto.Encode(m, s.obf))
}

// deliver routes a message to a registered client: directly when the
// client is homed here, or wrapped in a federation forward to its
// home server — the only party whose datagrams traverse the client's
// NAT filter state (§3.1).
func (s *Server) deliver(rec Record, m *proto.Message) {
	if rec.Local() {
		s.sendUDP(rec.Public, m)
		return
	}
	if s.reuseEnc {
		// Inner message into its own scratch: fedForward will reuse
		// both scratchMsg (the wrapper skeleton) and enc (the wrapper
		// encoding), so m — often scratchMsg itself — must be fully
		// encoded before the call.
		s.fedScratch = proto.AppendMessage(s.fedScratch[:0], m, s.obf)
		s.fedForward(rec.Home, rec.Name, s.fedScratch)
		return
	}
	s.fedForward(rec.Home, rec.Name, proto.Encode(m, s.obf))
}

// --- TCP transport ---

func (s *Server) handleAccept(conn *tcp.Conn) {
	// The client is identified once its Register frame arrives.
	var dec proto.StreamDecoder
	var owner *tcpClient
	conn.OnData(func(cn *tcp.Conn, p []byte) {
		msgs, err := dec.Feed(p)
		if err != nil {
			cn.Abort()
			return
		}
		for _, m := range msgs {
			owner = s.handleTCPMessage(cn, owner, m)
		}
	})
	conn.OnClosed(func(cn *tcp.Conn) {
		if owner != nil && owner.conn == cn {
			delete(s.tcpc, owner.name)
		}
	})
}

func (s *Server) handleTCPMessage(conn *tcp.Conn, owner *tcpClient, m *proto.Message) *tcpClient {
	s.tracef("S/tcp <- %s from=%s(%s)", m.Type, m.From, conn.Remote())
	switch m.Type {
	case proto.TypeRegister:
		c := &tcpClient{
			name:    m.From,
			conn:    conn,
			public:  conn.Remote(), // observed (§3.1)
			private: m.Private,
		}
		s.tcpc[m.From] = c
		s.stats.RegistrationsTCP++
		s.sendTCP(c, &proto.Message{
			Type: proto.TypeRegisterOK, Target: m.From,
			Public:  conn.Remote(),
			Private: c.private,
		})
		return c

	case proto.TypeConnectRequest:
		s.stats.ConnectRequests++
		s.forwardDetails(conn.Remote(), m, true)

	case proto.TypeRelayTo:
		s.relay(m)

	case proto.TypeReverseRequest:
		s.reverse(conn.Remote(), m)

	case proto.TypeSeqRequest, proto.TypeSeqGo:
		s.seqSignal(m)

	case proto.TypeKeepAlive:
		// Registration-connection keep-alive (§3.6): the traffic
		// itself refreshes NAT state on the path; nothing to record.
	}
	return owner
}

func (s *Server) sendTCP(c *tcpClient, m *proto.Message) {
	if c == nil || c.conn == nil {
		return
	}
	c.conn.Write(proto.AppendFrame(nil, m, s.obf))
}

// fail reports a brokering failure back to the requester over the
// surface the request arrived on.
func (s *Server) fail(from inet.Endpoint, m *proto.Message, viaTCP bool) {
	s.stats.Errors++
	e := &s.scratchMsg
	*e = proto.Message{Type: proto.TypeError, Target: m.From, From: m.Target}
	if viaTCP {
		s.sendTCP(s.tcpc[m.From], e)
		return
	}
	// Reply to the observed source: the request just traversed the
	// requester's NAT, so this path is always open — even for clients
	// whose own registration has already expired.
	s.sendUDP(from, e)
}

// KeepAliveInterval is how often idle clients should ping S to keep
// their registration's NAT mapping alive (§3.6).
const KeepAliveInterval = 15 * time.Second
