// Package vendors encodes Table 1 of the paper — per-vendor NAT
// Check results — and generates deterministic simulated device
// populations whose behavior marginals equal the printed cells, so
// that running the reproduced NAT Check over the population
// regenerates the table.
//
// Correlation caveat: the paper reports only marginal counts per
// column (and different denominators per column, because hairpin and
// TCP testing shipped in later NAT Check versions, §6.2). We assign
// properties to devices in index order (device i supports a property
// iff i < numerator), which maximizes cross-column correlation; the
// true per-device joint distribution is unknowable from the paper.
//
// Known inconsistency in the printed table (see EXPERIMENTS.md):
// the per-vendor TCP-hairpin numerators sum to 40, exceeding the
// printed All-Vendors total of 37/286 — the Windows row's 28/31 (90%)
// is the outlier. We reproduce every per-vendor row exactly; the
// residual "Other" bucket's TCP-hairpin numerator is clamped at zero,
// and the recomputed All-Vendors row therefore shows 40/286 against
// the paper's 37/286.
package vendors

import (
	"fmt"

	"natpunch/internal/nat"
)

// Cell is one "n/N (pct%)" table entry.
type Cell struct {
	Num, Den int
}

// Pct returns the percentage the paper prints.
func (c Cell) Pct() int {
	if c.Den == 0 {
		return 0
	}
	return int(float64(c.Num)/float64(c.Den)*100 + 0.5)
}

// String formats the cell as the paper does: "45/46 (98%)".
func (c Cell) String() string {
	return fmt.Sprintf("%d/%d (%d%%)", c.Num, c.Den, c.Pct())
}

// Row is one vendor's line in Table 1.
type Row struct {
	Name     string
	Hardware bool // NAT hardware vs OS-based NAT
	// The four measured columns. Denominators differ because hairpin
	// and TCP tests were added in later NAT Check versions (§6.2).
	UDPPunch   Cell
	UDPHairpin Cell
	TCPPunch   Cell
	TCPHairpin Cell
}

// Table1 holds every per-vendor row the paper prints (vendors with at
// least five data points), in the paper's order.
var Table1 = []Row{
	{"Linksys", true, Cell{45, 46}, Cell{5, 42}, Cell{33, 38}, Cell{3, 38}},
	{"Netgear", true, Cell{31, 37}, Cell{3, 35}, Cell{19, 30}, Cell{0, 30}},
	{"D-Link", true, Cell{16, 21}, Cell{11, 21}, Cell{9, 19}, Cell{2, 19}},
	{"Draytek", true, Cell{2, 17}, Cell{3, 12}, Cell{2, 7}, Cell{0, 7}},
	{"Belkin", true, Cell{14, 14}, Cell{1, 14}, Cell{11, 11}, Cell{0, 11}},
	{"Cisco", true, Cell{12, 12}, Cell{3, 9}, Cell{6, 7}, Cell{2, 7}},
	{"SMC", true, Cell{12, 12}, Cell{3, 10}, Cell{8, 9}, Cell{2, 9}},
	{"ZyXEL", true, Cell{7, 9}, Cell{1, 8}, Cell{0, 7}, Cell{0, 7}},
	{"3Com", true, Cell{7, 7}, Cell{1, 7}, Cell{5, 6}, Cell{0, 6}},
	{"Windows", false, Cell{31, 33}, Cell{11, 32}, Cell{16, 31}, Cell{28, 31}},
	{"Linux", false, Cell{26, 32}, Cell{3, 25}, Cell{16, 24}, Cell{2, 24}},
	{"FreeBSD", false, Cell{7, 9}, Cell{3, 6}, Cell{2, 3}, Cell{1, 1}},
}

// PaperAllVendors is the All-Vendors row exactly as printed.
var PaperAllVendors = Row{
	Name:     "All Vendors",
	UDPPunch: Cell{310, 380}, UDPHairpin: Cell{80, 335},
	TCPPunch: Cell{184, 286}, TCPHairpin: Cell{37, 286},
}

// OtherRow is the residual bucket for vendors with fewer than five
// data points, sized so column totals match the printed All-Vendors
// row. Its TCP-hairpin numerator is clamped at zero (see the package
// comment on the printed table's inconsistency).
func OtherRow() Row {
	other := Row{Name: "Other", Hardware: true}
	other.UDPPunch = Cell{PaperAllVendors.UDPPunch.Num, PaperAllVendors.UDPPunch.Den}
	other.UDPHairpin = Cell{PaperAllVendors.UDPHairpin.Num, PaperAllVendors.UDPHairpin.Den}
	other.TCPPunch = Cell{PaperAllVendors.TCPPunch.Num, PaperAllVendors.TCPPunch.Den}
	other.TCPHairpin = Cell{PaperAllVendors.TCPHairpin.Num, PaperAllVendors.TCPHairpin.Den}
	for _, r := range Table1 {
		other.UDPPunch.Num -= r.UDPPunch.Num
		other.UDPPunch.Den -= r.UDPPunch.Den
		other.UDPHairpin.Num -= r.UDPHairpin.Num
		other.UDPHairpin.Den -= r.UDPHairpin.Den
		other.TCPPunch.Num -= r.TCPPunch.Num
		other.TCPPunch.Den -= r.TCPPunch.Den
		other.TCPHairpin.Num -= r.TCPHairpin.Num
		other.TCPHairpin.Den -= r.TCPHairpin.Den
	}
	if other.TCPHairpin.Num < 0 {
		other.TCPHairpin.Num = 0
	}
	return other
}

// AllRows returns the per-vendor rows plus the Other bucket — the
// full population of 380 UDP data points.
func AllRows() []Row {
	return append(append([]Row(nil), Table1...), OtherRow())
}

// Device is one simulated data point: a NAT behavior plus which
// columns the paper's survey actually measured for it (later NAT
// Check versions added hairpin and TCP testing, §6.2).
type Device struct {
	Vendor   string
	Index    int
	Behavior nat.Behavior
	// The Measured flags report whether this data point contributes
	// to each optional column's denominator (the survey added tests
	// over time, so denominators differ per column, §6.2).
	MeasuredHairpin    bool
	MeasuredTCP        bool
	MeasuredTCPHairpin bool
}

// Devices deterministically generates the row's population. Device i
// supports a column's property iff i is below that column's
// numerator, which reproduces every marginal exactly.
func Devices(row Row) []Device {
	n := row.UDPPunch.Den
	devs := make([]Device, 0, n)
	for i := 0; i < n; i++ {
		b := nat.Behavior{
			Label:     fmt.Sprintf("%s-%03d", row.Name, i),
			PortAlloc: nat.PortSequential,
			Filtering: nat.FilterAddressPortDependent,
		}
		if i < row.UDPPunch.Num {
			b.Mapping = nat.MappingEndpointIndependent
		} else {
			b.Mapping = nat.MappingAddressPortDependent
		}
		if i < row.TCPPunch.Num {
			b.TCPRefusal = nat.RefuseDrop
		} else {
			// Incompatible devices that still translate consistently
			// fail TCP via active RSTs (§5.2); inconsistent
			// (symmetric) devices fail via the consistency check
			// either way.
			b.TCPRefusal = nat.RefuseRST
		}
		b.HairpinUDP = i < row.UDPHairpin.Num
		b.HairpinTCP = i < row.TCPHairpin.Num
		devs = append(devs, Device{
			Vendor:             row.Name,
			Index:              i,
			Behavior:           b,
			MeasuredHairpin:    i < row.UDPHairpin.Den,
			MeasuredTCP:        i < row.TCPPunch.Den,
			MeasuredTCPHairpin: i < row.TCPHairpin.Den,
		})
	}
	return devs
}

// Tally aggregates measured reports back into a Row; the survey
// experiment uses it to rebuild Table 1 from NAT Check outputs.
type Tally struct {
	Row Row
}

// NewTally starts an empty tally for a vendor name.
func NewTally(name string, hardware bool) *Tally {
	return &Tally{Row: Row{Name: name, Hardware: hardware}}
}

// Add records one device's NAT Check outcome.
func (t *Tally) Add(dev Device, udpPunch, udpHairpin, tcpPunch, tcpHairpin bool) {
	t.Row.UDPPunch.Den++
	if udpPunch {
		t.Row.UDPPunch.Num++
	}
	if dev.MeasuredHairpin {
		t.Row.UDPHairpin.Den++
		if udpHairpin {
			t.Row.UDPHairpin.Num++
		}
	}
	if dev.MeasuredTCP {
		t.Row.TCPPunch.Den++
		if tcpPunch {
			t.Row.TCPPunch.Num++
		}
	}
	if dev.MeasuredTCPHairpin {
		t.Row.TCPHairpin.Den++
		if tcpHairpin {
			t.Row.TCPHairpin.Num++
		}
	}
}

// Merge adds another row's counts into the tally (for All-Vendors).
func (t *Tally) Merge(r Row) {
	t.Row.UDPPunch.Num += r.UDPPunch.Num
	t.Row.UDPPunch.Den += r.UDPPunch.Den
	t.Row.UDPHairpin.Num += r.UDPHairpin.Num
	t.Row.UDPHairpin.Den += r.UDPHairpin.Den
	t.Row.TCPPunch.Num += r.TCPPunch.Num
	t.Row.TCPPunch.Den += r.TCPPunch.Den
	t.Row.TCPHairpin.Num += r.TCPHairpin.Num
	t.Row.TCPHairpin.Den += r.TCPHairpin.Den
}
