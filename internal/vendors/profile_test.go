package vendors_test

// Profile-drift guards: every generated vendor device must classify
// under behavior.go exactly as its row's declared cells say. The
// existing marginal tests catch count drift; these per-device,
// per-axis assertions catch a device whose *configuration* stops
// matching its intended classification (e.g. a new vendor profile
// whose filtering policy accidentally flips SupportsTCPPunch), which
// matters now that the fleet simulator draws its population mix from
// these profiles.

import (
	"testing"

	"natpunch/internal/nat"
	"natpunch/internal/vendors"
)

func TestDeviceProfilesMatchDeclaredClassification(t *testing.T) {
	for _, row := range vendors.AllRows() {
		row := row
		t.Run(row.Name, func(t *testing.T) {
			for _, d := range vendors.Devices(row) {
				b := d.Behavior

				// UDP punchability is declared by the UDP-punch cell and
				// must equal behavior.go's classification.
				wantUDP := d.Index < row.UDPPunch.Num
				if got := b.SupportsUDPPunch(); got != wantUDP {
					t.Fatalf("device %d: SupportsUDPPunch=%v, cell says %v (behavior %s)",
						d.Index, got, wantUDP, b)
				}
				// The mapping policy must be exactly the one implied:
				// endpoint-independent for punchable devices, symmetric
				// otherwise — never an intermediate policy that would
				// classify the same today but drift later.
				wantMapping := nat.MappingAddressPortDependent
				if wantUDP {
					wantMapping = nat.MappingEndpointIndependent
				}
				if b.Mapping != wantMapping {
					t.Fatalf("device %d: mapping %v, want %v", d.Index, b.Mapping, wantMapping)
				}

				// TCP punchability: the cell is the declaration; the
				// classifier must agree given the device's refusal mode
				// and filtering policy.
				wantTCP := d.Index < row.TCPPunch.Num
				if got := b.SupportsTCPPunch(); got != wantTCP {
					t.Fatalf("device %d: SupportsTCPPunch=%v, cell says %v (behavior %s)",
						d.Index, got, wantTCP, b)
				}
				// Survey devices model consumer NATs: port-restricted
				// filtering and sequential allocation; TCP-incompatible
				// yet consistent devices must refuse via RST (§5.2), so
				// that their failure mode matches how NAT Check actually
				// detects incompatibility.
				if b.Filtering != nat.FilterAddressPortDependent {
					t.Fatalf("device %d: filtering %v, want address+port-dependent", d.Index, b.Filtering)
				}
				if b.PortAlloc != nat.PortSequential {
					t.Fatalf("device %d: port allocation %v, want sequential", d.Index, b.PortAlloc)
				}
				if wantUDP && !wantTCP && b.TCPRefusal != nat.RefuseRST {
					t.Fatalf("device %d: TCP-incompatible cone must refuse with RST, has %v",
						d.Index, b.TCPRefusal)
				}
				if wantTCP && b.TCPRefusal != nat.RefuseDrop {
					t.Fatalf("device %d: TCP-compatible device must drop SYNs silently, has %v",
						d.Index, b.TCPRefusal)
				}

				// Hairpin support flags come straight from the hairpin
				// cells, measured-denominator flags from the cells'
				// denominators (§6.2's versioned test coverage).
				if b.HairpinUDP != (d.Index < row.UDPHairpin.Num) {
					t.Fatalf("device %d: HairpinUDP=%v disagrees with cell %v", d.Index, b.HairpinUDP, row.UDPHairpin)
				}
				if b.HairpinTCP != (d.Index < row.TCPHairpin.Num) {
					t.Fatalf("device %d: HairpinTCP=%v disagrees with cell %v", d.Index, b.HairpinTCP, row.TCPHairpin)
				}
				if d.MeasuredHairpin != (d.Index < row.UDPHairpin.Den) ||
					d.MeasuredTCP != (d.Index < row.TCPPunch.Den) ||
					d.MeasuredTCPHairpin != (d.Index < row.TCPHairpin.Den) {
					t.Fatalf("device %d: measured flags disagree with cell denominators", d.Index)
				}
			}
		})
	}
}

// TestPresetClassifications pins the behavior.go presets the fleet
// mix and experiments rely on: a rename or default change that flips
// one of these silently rewrites every downstream table.
func TestPresetClassifications(t *testing.T) {
	cases := []struct {
		name     string
		b        nat.Behavior
		udp, tcp bool
	}{
		{"well-behaved", nat.WellBehaved(), true, true},
		{"cone", nat.Cone(), true, true},
		{"full-cone", nat.FullCone(), true, true},
		{"restricted-cone", nat.RestrictedCone(), true, true},
		{"symmetric", nat.Symmetric(), false, false},
		{"symmetric-random", nat.SymmetricRandom(), false, false},
		// RST refusal kills TCP punching only when filtering would
		// actually refuse something (§5.2 / §6.2 criterion).
		{"cone-rst", nat.RSTCone(), true, false},
		{"mangler", nat.Mangler(), true, true},
	}
	for _, c := range cases {
		if got := c.b.SupportsUDPPunch(); got != c.udp {
			t.Errorf("%s: SupportsUDPPunch=%v, want %v", c.name, got, c.udp)
		}
		if got := c.b.SupportsTCPPunch(); got != c.tcp {
			t.Errorf("%s: SupportsTCPPunch=%v, want %v", c.name, got, c.tcp)
		}
	}
	frst := nat.FullCone()
	frst.TCPRefusal = nat.RefuseRST
	if !frst.SupportsTCPPunch() {
		t.Error("full-cone+RST never actually refuses mapped traffic; must remain TCP-punchable")
	}
}
