package vendors_test

import (
	"testing"

	"natpunch/internal/vendors"
)

func TestOtherRowBalancesTotals(t *testing.T) {
	other := vendors.OtherRow()
	if other.UDPPunch != (vendors.Cell{Num: 100, Den: 131}) {
		t.Errorf("Other UDP punch = %v", other.UDPPunch)
	}
	if other.UDPHairpin != (vendors.Cell{Num: 32, Den: 114}) {
		t.Errorf("Other UDP hairpin = %v", other.UDPHairpin)
	}
	if other.TCPPunch != (vendors.Cell{Num: 57, Den: 94}) {
		t.Errorf("Other TCP punch = %v", other.TCPPunch)
	}
	// TCP hairpin clamps at zero due to the printed table's
	// inconsistency (per-vendor sum 40 > printed total 37). Its
	// denominator is 96, not 94, because FreeBSD's hairpin column has
	// denominator 1 against its TCP-punch denominator of 3.
	if other.TCPHairpin.Num != 0 || other.TCPHairpin.Den != 96 {
		t.Errorf("Other TCP hairpin = %v", other.TCPHairpin)
	}
}

func TestDeviceMarginalsMatchCells(t *testing.T) {
	for _, row := range vendors.AllRows() {
		devs := vendors.Devices(row)
		if len(devs) != row.UDPPunch.Den {
			t.Fatalf("%s: %d devices, want %d", row.Name, len(devs), row.UDPPunch.Den)
		}
		var udp, udpH, udpHDen, tcp, tcpDen, tcpH, tcpHDen int
		for _, d := range devs {
			if d.Behavior.SupportsUDPPunch() {
				udp++
			}
			if d.MeasuredHairpin {
				udpHDen++
				if d.Behavior.HairpinUDP {
					udpH++
				}
			}
			if d.MeasuredTCP {
				tcpDen++
				if d.Behavior.SupportsTCPPunch() {
					tcp++
				}
			}
			if d.MeasuredTCPHairpin {
				tcpHDen++
				if d.Behavior.HairpinTCP {
					tcpH++
				}
			}
		}
		if udp != row.UDPPunch.Num {
			t.Errorf("%s: UDP punch %d, want %d", row.Name, udp, row.UDPPunch.Num)
		}
		if udpH != row.UDPHairpin.Num || udpHDen != row.UDPHairpin.Den {
			t.Errorf("%s: UDP hairpin %d/%d, want %v", row.Name, udpH, udpHDen, row.UDPHairpin)
		}
		if tcp != row.TCPPunch.Num || tcpDen != row.TCPPunch.Den {
			t.Errorf("%s: TCP punch %d/%d, want %v", row.Name, tcp, tcpDen, row.TCPPunch)
		}
		if tcpH != row.TCPHairpin.Num || tcpHDen != row.TCPHairpin.Den {
			t.Errorf("%s: TCP hairpin %d/%d, want %v", row.Name, tcpH, tcpHDen, row.TCPHairpin)
		}
	}
}

func TestTCPPunchNeverExceedsUDPPunchPerDevice(t *testing.T) {
	// Sanity: a device that fails the UDP consistency test (symmetric
	// mapping) cannot pass the TCP test either — the generator must
	// not produce such devices (t <= u holds in every printed row).
	for _, row := range vendors.AllRows() {
		for _, d := range vendors.Devices(row) {
			if d.Behavior.SupportsTCPPunch() && !d.Behavior.SupportsUDPPunch() {
				t.Fatalf("%s device %d: TCP-punchable but not UDP-punchable", row.Name, d.Index)
			}
		}
	}
}

func TestCellFormatting(t *testing.T) {
	c := vendors.Cell{Num: 45, Den: 46}
	if c.String() != "45/46 (98%)" {
		t.Errorf("String() = %q", c.String())
	}
	if (vendors.Cell{}).Pct() != 0 {
		t.Error("zero cell pct")
	}
	// The paper's rounding: 310/380 = 82%.
	if (vendors.Cell{Num: 310, Den: 380}).Pct() != 82 {
		t.Error("82% expected")
	}
	if (vendors.Cell{Num: 184, Den: 286}).Pct() != 64 {
		t.Error("64% expected")
	}
}

func TestTallyRoundTrip(t *testing.T) {
	row := vendors.Table1[0] // Linksys
	tally := vendors.NewTally(row.Name, row.Hardware)
	for _, d := range vendors.Devices(row) {
		tally.Add(d,
			d.Behavior.SupportsUDPPunch(),
			d.Behavior.HairpinUDP,
			d.Behavior.SupportsTCPPunch(),
			d.Behavior.HairpinTCP)
	}
	got := tally.Row
	if got.UDPPunch != row.UDPPunch || got.UDPHairpin != row.UDPHairpin ||
		got.TCPPunch != row.TCPPunch || got.TCPHairpin != row.TCPHairpin {
		t.Errorf("tally mismatch:\n got %+v\nwant %+v", got, row)
	}
}

func TestMergeReproducesAllVendorsUDP(t *testing.T) {
	all := vendors.NewTally("All Vendors", false)
	for _, row := range vendors.AllRows() {
		all.Merge(row)
	}
	if all.Row.UDPPunch != vendors.PaperAllVendors.UDPPunch {
		t.Errorf("UDP punch total %v, want %v", all.Row.UDPPunch, vendors.PaperAllVendors.UDPPunch)
	}
	if all.Row.UDPHairpin != vendors.PaperAllVendors.UDPHairpin {
		t.Errorf("UDP hairpin total %v", all.Row.UDPHairpin)
	}
	if all.Row.TCPPunch != vendors.PaperAllVendors.TCPPunch {
		t.Errorf("TCP punch total %v", all.Row.TCPPunch)
	}
	// TCP hairpin recomputes to 40/286 against the printed 37/286
	// (and the Other bucket's denominator arithmetic gives 286 back).
	if all.Row.TCPHairpin.Num != 40 || all.Row.TCPHairpin.Den != 286 {
		t.Errorf("TCP hairpin total %v, want 40/286 (documented discrepancy)", all.Row.TCPHairpin)
	}
}
