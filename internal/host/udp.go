package host

import (
	"natpunch/internal/inet"
)

// UDPSocket is a bound UDP socket on a simulated host. A single UDP
// socket suffices to talk to the rendezvous server and any number of
// peers simultaneously (§4.2 contrasts this with TCP's socket-per-
// connection model).
type UDPSocket struct {
	h       *Host
	local   inet.Endpoint
	onRecv  func(from inet.Endpoint, payload []byte)
	onError func(about inet.Endpoint, err error)
	closed  bool
}

// UDPBind binds a UDP socket to the given local port (0 allocates an
// ephemeral port). The socket's address is the host's primary
// address.
func (h *Host) UDPBind(port inet.Port) (*UDPSocket, error) {
	if len(h.ifcs) == 0 {
		return nil, ErrNoRoute
	}
	if port == 0 {
		p, err := h.allocEphemeral(func(p inet.Port) bool {
			_, used := h.udpSocks[p]
			return used
		})
		if err != nil {
			return nil, err
		}
		port = p
	} else if _, used := h.udpSocks[port]; used {
		return nil, ErrAddrInUse
	}
	s := &UDPSocket{h: h, local: inet.Endpoint{Addr: h.Addr(), Port: port}}
	h.udpSocks[port] = s
	return s, nil
}

// Local returns the socket's bound endpoint — the client's *private
// endpoint* in the paper's terminology (§3.1).
func (s *UDPSocket) Local() inet.Endpoint { return s.local }

// OnRecv sets the datagram delivery callback.
func (s *UDPSocket) OnRecv(fn func(from inet.Endpoint, payload []byte)) { s.onRecv = fn }

// OnError sets the callback for ICMP errors attributed to this
// socket's traffic.
func (s *UDPSocket) OnError(fn func(about inet.Endpoint, err error)) { s.onError = fn }

// SendTo transmits a datagram to the given endpoint.
func (s *UDPSocket) SendTo(to inet.Endpoint, payload []byte) error {
	if s.closed {
		return ErrSocketClose
	}
	s.h.send(&inet.Packet{
		Proto: inet.UDP, Src: s.local, Dst: to, TTL: inet.DefaultTTL,
		Payload: payload,
	})
	return nil
}

// Close releases the socket and its port.
func (s *UDPSocket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.h.udpSocks[s.local.Port] == s {
		delete(s.h.udpSocks, s.local.Port)
	}
}

func (h *Host) receiveUDP(pkt *inet.Packet) {
	s, ok := h.udpSocks[pkt.Dst.Port]
	if !ok || s.closed {
		if !h.SilentToClosedPorts {
			h.send(&inet.Packet{
				Proto: inet.ICMP, ICMP: inet.ICMPPortUnreachable,
				Src: inet.Endpoint{Addr: h.Addr()}, Dst: pkt.Src,
				TTL: inet.DefaultTTL, Orig: pkt.Session(), OrigProto: inet.UDP,
			})
		}
		return
	}
	if s.onRecv != nil {
		s.onRecv(pkt.Src, pkt.Payload)
	}
}
