package host

import (
	"math/rand"
	"time"

	"natpunch/internal/inet"
	"natpunch/transport"
)

// simTransport adapts a simulated host to the engine's transport
// seam. Everything already runs single-threaded inside the simulation
// event loop, so Invoke degenerates to a direct call; the simnet
// package wraps this adapter with a mutex when application goroutines
// drive the world concurrently.
type simTransport struct {
	h *Host
}

// Transport returns the host's view of the transport seam. The
// returned transport's serialized context is the simulation event
// loop itself.
func (h *Host) Transport() transport.Transport { return simTransport{h} }

// BindUDP binds a simulated UDP socket; *UDPSocket satisfies
// transport.UDPConn directly.
func (t simTransport) BindUDP(port inet.Port) (transport.UDPConn, error) {
	return t.h.UDPBind(port)
}

// After schedules on the simulation scheduler; *sim.Timer satisfies
// transport.Timer directly.
func (t simTransport) After(d time.Duration, fn func()) transport.Timer {
	return t.h.Sched().After(d, fn)
}

// Now returns virtual time.
func (t simTransport) Now() time.Duration { return t.h.Sched().Now() }

// Rand returns the simulation's deterministic random source.
func (t simTransport) Rand() *rand.Rand { return t.h.Sched().Rand() }

// Invoke runs fn directly: pure-simulation callers are already inside
// the (single-threaded) event loop.
func (t simTransport) Invoke(fn func()) { fn() }

// SimHost exposes the underlying simulated host. The engine asserts
// for this capability to unlock features that need the full host
// stack (TCP hole punching); transports without it are UDP-only.
func (t simTransport) SimHost() *Host { return t.h }
