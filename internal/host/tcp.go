package host

import (
	"natpunch/internal/inet"
	"natpunch/internal/tcp"
)

// TCPListener accepts incoming TCP connections on a local port.
type TCPListener struct {
	h        *Host
	port     inet.Port
	reuse    bool
	onAccept func(*tcp.Conn)
	closed   bool
}

// DialOpts configures an outgoing TCP connection attempt.
type DialOpts struct {
	// LocalPort fixes the local port; 0 allocates an ephemeral port.
	// TCP hole punching requires dialing from the same local port used
	// to register with the rendezvous server (§4.2 step 3).
	LocalPort inet.Port
	// ReuseAddr corresponds to SO_REUSEADDR (+SO_REUSEPORT on BSD):
	// binding multiple sockets to one local port is allowed only when
	// every socket involved sets it (§4.1).
	ReuseAddr bool
}

// TCPListen opens a listening socket on port (0 allocates ephemeral).
// onAccept fires once per accepted connection, after its handshake
// completes; the application installs data callbacks on the conn from
// inside onAccept.
func (h *Host) TCPListen(port inet.Port, reuse bool, onAccept func(*tcp.Conn)) (*TCPListener, error) {
	if len(h.ifcs) == 0 {
		return nil, ErrNoRoute
	}
	if port == 0 {
		p, err := h.allocEphemeral(func(p inet.Port) bool { return h.tcpBinds[p] != nil })
		if err != nil {
			return nil, err
		}
		port = p
	}
	if _, dup := h.listeners[port]; dup {
		return nil, ErrAddrInUse
	}
	if err := h.bindTCP(port, reuse); err != nil {
		return nil, err
	}
	l := &TCPListener{h: h, port: port, reuse: reuse, onAccept: onAccept}
	h.listeners[port] = l
	return l, nil
}

// Port returns the listener's bound port.
func (l *TCPListener) Port() inet.Port { return l.port }

// Local returns the listener's bound endpoint.
func (l *TCPListener) Local() inet.Endpoint {
	return inet.Endpoint{Addr: l.h.Addr(), Port: l.port}
}

// Close stops accepting. Established connections are unaffected.
func (l *TCPListener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.h.listeners, l.port)
	l.h.unbindTCP(l.port)
}

// TCPDial starts an active open to remote and returns the connection,
// which will be in SYN-SENT until the handshake completes (watch
// cb.Established / cb.Error).
func (h *Host) TCPDial(remote inet.Endpoint, opts DialOpts, cb tcp.Callbacks) (*tcp.Conn, error) {
	if len(h.ifcs) == 0 {
		return nil, ErrNoRoute
	}
	port := opts.LocalPort
	if port == 0 {
		p, err := h.allocEphemeral(func(p inet.Port) bool { return h.tcpBinds[p] != nil })
		if err != nil {
			return nil, err
		}
		port = p
	}
	local := inet.Endpoint{Addr: h.Addr(), Port: port}
	sess := inet.Session{Local: local, Remote: remote}
	if _, dup := h.tcpConns[sess]; dup {
		return nil, ErrAddrInUse
	}
	if err := h.bindTCP(port, opts.ReuseAddr); err != nil {
		return nil, err
	}
	c := h.newConn(local, remote, h.net.Sched.Rand().Uint32(), cb)
	h.tcpConns[sess] = c
	c.Open()
	return c, nil
}

// newConn builds a tcp.Conn wired to this host's clock, output path,
// and demux table.
func (h *Host) newConn(local, remote inet.Endpoint, iss uint32, cb tcp.Callbacks) *tcp.Conn {
	env := tcp.Env{
		Now:   h.net.Sched.Now,
		After: h.net.Sched.After,
		Send:  h.send,
		Remove: func(c *tcp.Conn) {
			sess := c.Session()
			if h.tcpConns[sess] == c {
				delete(h.tcpConns, sess)
				h.unbindTCP(sess.Local.Port)
			}
		},
	}
	return tcp.NewConn(env, h.TCPConfig, local, remote, iss, cb)
}

// bindTCP records a binder on the port, enforcing SO_REUSEADDR rules.
func (h *Host) bindTCP(port inet.Port, reuse bool) error {
	b := h.tcpBinds[port]
	if b == nil {
		h.tcpBinds[port] = &bindState{refs: 1, reuseAll: reuse}
		return nil
	}
	if !b.reuseAll || !reuse {
		return ErrAddrInUse
	}
	b.refs++
	return nil
}

// bindTCPChild records a listener-spawned connection on the port.
// Accepted connections always share their listener's port; the
// SO_REUSEADDR rules of bindTCP apply only to explicit application
// binds (§4.1).
func (h *Host) bindTCPChild(port inet.Port) {
	b := h.tcpBinds[port]
	if b == nil {
		h.tcpBinds[port] = &bindState{refs: 1}
		return
	}
	b.refs++
}

func (h *Host) unbindTCP(port inet.Port) {
	b := h.tcpBinds[port]
	if b == nil {
		return
	}
	b.refs--
	if b.refs <= 0 {
		delete(h.tcpBinds, port)
	}
}

// receiveTCP demultiplexes an incoming segment, implementing the §4.3
// OS-flavor split for SYNs that match an in-progress connect.
func (h *Host) receiveTCP(pkt *inet.Packet) {
	sess := inet.Session{Local: pkt.Dst, Remote: pkt.Src}
	conn, haveConn := h.tcpConns[sess]
	bareSYN := pkt.Flags.Has(inet.FlagSYN) && !pkt.Flags.Has(inet.FlagACK)
	listener, haveListener := h.listeners[pkt.Dst.Port]
	if haveListener && listener.closed {
		haveListener = false
	}

	if haveConn {
		if bareSYN && conn.State() == tcp.SynSent && h.flavor == LinuxStyle && haveListener {
			// Linux/Windows behavior (§4.3): the listen socket wins.
			// A new socket is created for the incoming SYN and will be
			// delivered via accept(); the in-progress connect() on the
			// same 4-tuple fails with "address in use".
			delete(h.tcpConns, sess) // detach before failing so Remove doesn't clobber
			h.unbindTCP(sess.Local.Port)
			// The child inherits the displaced connect socket's ISS so
			// its SYN-ACK "replays A's original outbound SYN, using
			// the same sequence number" (§4.3) — this is what lets a
			// simultaneous open converge even when both sides take
			// the accept() path (§4.4).
			h.passiveOpen(listener, sess, pkt, conn.ISS())
			conn.FailAddrInUse()
			return
		}
		conn.Deliver(pkt)
		return
	}

	if bareSYN && haveListener {
		h.passiveOpen(listener, sess, pkt, h.net.Sched.Rand().Uint32())
		return
	}

	// No socket wants this segment: answer with RST (unless it is
	// itself an RST, or the host is configured silent).
	if pkt.Flags.Has(inet.FlagRST) || h.SilentToClosedPorts {
		return
	}
	h.sendRSTFor(pkt)
}

// passiveOpen creates a listener child connection from an incoming
// SYN.
func (h *Host) passiveOpen(l *TCPListener, sess inet.Session, syn *inet.Packet, iss uint32) {
	h.bindTCPChild(sess.Local.Port)
	child := h.newConn(sess.Local, sess.Remote, iss, tcp.Callbacks{
		Established: func(c *tcp.Conn) {
			if l.onAccept != nil {
				l.onAccept(c)
			}
		},
	})
	h.tcpConns[sess] = child
	child.OpenPassive(syn)
}

// sendRSTFor answers an unwanted segment with a reset, the behavior
// §5.2 notes NATs should *not* mimic for unsolicited SYNs — but end
// hosts legitimately do.
func (h *Host) sendRSTFor(pkt *inet.Packet) {
	rst := &inet.Packet{
		Proto: inet.TCP, Src: pkt.Dst, Dst: pkt.Src, TTL: inet.DefaultTTL,
		Flags: inet.FlagRST | inet.FlagACK,
		Ack:   pkt.Seq + 1,
	}
	if pkt.Flags.Has(inet.FlagACK) {
		rst.Flags = inet.FlagRST
		rst.Seq = pkt.Ack
	}
	h.send(rst)
}

// TCPConnCount reports the number of live TCP connections, for the
// Figure 7 socket-accounting experiment and leak checks.
func (h *Host) TCPConnCount() int { return len(h.tcpConns) }

// TCPBoundPorts reports how many distinct local TCP ports are bound.
func (h *Host) TCPBoundPorts() int { return len(h.tcpBinds) }
