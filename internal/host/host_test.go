package host

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"natpunch/internal/inet"
	"natpunch/internal/sim"
	"natpunch/internal/tcp"
)

// twoHosts builds a public segment with two directly-connected hosts.
func twoHosts(t *testing.T, flavorA, flavorB OSFlavor) (*sim.Network, *Host, *Host) {
	t.Helper()
	n := sim.NewNetwork(1)
	core := n.NewSegment("core", "0.0.0.0/0", 5*time.Millisecond)
	a := New(n, "A", flavorA)
	b := New(n, "B", flavorB)
	a.Attach(core, inet.MustParseAddr("1.0.0.1"))
	b.Attach(core, inet.MustParseAddr("1.0.0.2"))
	return n, a, b
}

func TestUDPExchange(t *testing.T) {
	n, a, b := twoHosts(t, BSDStyle, BSDStyle)
	sa, err := a.UDPBind(4321)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.UDPBind(1234)
	if err != nil {
		t.Fatal(err)
	}
	var gotFrom inet.Endpoint
	var gotData []byte
	sb.OnRecv(func(from inet.Endpoint, p []byte) {
		gotFrom, gotData = from, p
		sb.SendTo(from, []byte("pong"))
	})
	var reply []byte
	sa.OnRecv(func(_ inet.Endpoint, p []byte) { reply = p })

	sa.SendTo(sb.Local(), []byte("ping"))
	n.Sched.Run()

	if string(gotData) != "ping" || gotFrom != sa.Local() {
		t.Fatalf("b got %q from %v", gotData, gotFrom)
	}
	if string(reply) != "pong" {
		t.Fatalf("a got %q", reply)
	}
}

func TestUDPBindConflictsAndEphemeral(t *testing.T) {
	_, a, _ := twoHosts(t, BSDStyle, BSDStyle)
	if _, err := a.UDPBind(4321); err != nil {
		t.Fatal(err)
	}
	if _, err := a.UDPBind(4321); err != ErrAddrInUse {
		t.Errorf("duplicate bind = %v, want ErrAddrInUse", err)
	}
	s1, err := a.UDPBind(0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.UDPBind(0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Local().Port == s2.Local().Port {
		t.Error("ephemeral ports collide")
	}
	if s1.Local().Port < 49152 {
		t.Errorf("ephemeral port %d below range", s1.Local().Port)
	}
	s1.Close()
	if err := s1.SendTo(s2.Local(), []byte("x")); err != ErrSocketClose {
		t.Errorf("send on closed socket = %v", err)
	}
	// Port is free again.
	if _, err := a.UDPBind(s1.Local().Port); err != nil {
		t.Errorf("rebind after close = %v", err)
	}
}

func TestUDPToClosedPortGetsICMP(t *testing.T) {
	n, a, b := twoHosts(t, BSDStyle, BSDStyle)
	sa, _ := a.UDPBind(100)
	var icmpAbout inet.Endpoint
	var icmpErr error
	sa.OnError(func(about inet.Endpoint, err error) { icmpAbout, icmpErr = about, err })
	dead := inet.Endpoint{Addr: b.Addr(), Port: 999}
	sa.SendTo(dead, []byte("anyone?"))
	n.Sched.Run()
	if icmpErr == nil || icmpAbout != dead {
		t.Fatalf("expected ICMP error about %v, got %v/%v", dead, icmpAbout, icmpErr)
	}
	// Silent mode: no ICMP.
	b.SilentToClosedPorts = true
	icmpErr = nil
	sa.SendTo(dead, []byte("anyone?"))
	n.Sched.Run()
	if icmpErr != nil {
		t.Error("silent host still sent ICMP")
	}
}

func TestTCPConnectAcceptAndTransfer(t *testing.T) {
	n, a, b := twoHosts(t, BSDStyle, BSDStyle)
	var accepted *tcp.Conn
	var serverGot bytes.Buffer
	_, err := b.TCPListen(80, false, func(c *tcp.Conn) {
		accepted = c
		c.OnData(func(_ *tcp.Conn, p []byte) {
			serverGot.Write(p)
			c.Write([]byte("ack:" + string(p)))
		})
	})
	if err != nil {
		t.Fatal(err)
	}

	var clientGot bytes.Buffer
	established := false
	conn, err := a.TCPDial(inet.Endpoint{Addr: b.Addr(), Port: 80}, DialOpts{}, tcp.Callbacks{
		Established: func(c *tcp.Conn) { established = true; c.Write([]byte("hello")) },
		Data:        func(_ *tcp.Conn, p []byte) { clientGot.Write(p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Sched.RunFor(2 * time.Second)

	if !established || !accepted.Accepted {
		t.Fatal("handshake incomplete")
	}
	if serverGot.String() != "hello" || clientGot.String() != "ack:hello" {
		t.Fatalf("server=%q client=%q", serverGot.String(), clientGot.String())
	}
	conn.Close()
	accepted.Close()
	n.Sched.RunFor(10 * time.Second)
	if a.TCPConnCount() != 0 || b.TCPConnCount() != 0 {
		t.Errorf("conn leak: a=%d b=%d", a.TCPConnCount(), b.TCPConnCount())
	}
	if a.TCPBoundPorts() != 0 {
		t.Errorf("port leak on a: %d", a.TCPBoundPorts())
	}
}

func TestTCPConnectToClosedPortResets(t *testing.T) {
	n, a, b := twoHosts(t, BSDStyle, BSDStyle)
	var gotErr error
	_, err := a.TCPDial(inet.Endpoint{Addr: b.Addr(), Port: 81}, DialOpts{}, tcp.Callbacks{
		Error: func(_ *tcp.Conn, e error) { gotErr = e },
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Sched.RunFor(time.Second)
	if !errors.Is(gotErr, tcp.ErrReset) {
		t.Fatalf("err = %v, want reset", gotErr)
	}
}

func TestTCPConnectToDeadAddressUnreachable(t *testing.T) {
	n, a, _ := twoHosts(t, BSDStyle, BSDStyle)
	var gotErr error
	_, err := a.TCPDial(inet.EP("1.0.0.99", 80), DialOpts{}, tcp.Callbacks{
		Error: func(_ *tcp.Conn, e error) { gotErr = e },
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Sched.RunFor(time.Second)
	if !errors.Is(gotErr, tcp.ErrUnreachable) {
		t.Fatalf("err = %v, want unreachable", gotErr)
	}
}

func TestReuseAddrSemantics(t *testing.T) {
	// §4.1: one local port must support a listener plus multiple
	// outbound connections, but only when every socket sets the reuse
	// flag.
	n, a, b := twoHosts(t, BSDStyle, BSDStyle)
	b.TCPListen(80, false, nil)
	b.TCPListen(81, false, nil)

	// Without reuse: second binder fails.
	if _, err := a.TCPDial(inet.Endpoint{Addr: b.Addr(), Port: 80}, DialOpts{LocalPort: 4321}, tcp.Callbacks{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.TCPDial(inet.Endpoint{Addr: b.Addr(), Port: 81}, DialOpts{LocalPort: 4321}, tcp.Callbacks{}); err != ErrAddrInUse {
		t.Fatalf("second bind without reuse = %v, want ErrAddrInUse", err)
	}
	n.Sched.RunFor(time.Second)

	// With reuse on all: listener + two dials share port 5000.
	if _, err := a.TCPListen(5000, true, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.TCPDial(inet.Endpoint{Addr: b.Addr(), Port: 80}, DialOpts{LocalPort: 5000, ReuseAddr: true}, tcp.Callbacks{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.TCPDial(inet.Endpoint{Addr: b.Addr(), Port: 81}, DialOpts{LocalPort: 5000, ReuseAddr: true}, tcp.Callbacks{}); err != nil {
		t.Fatal(err)
	}
	// Same 4-tuple twice: refused regardless of reuse.
	if _, err := a.TCPDial(inet.Endpoint{Addr: b.Addr(), Port: 81}, DialOpts{LocalPort: 5000, ReuseAddr: true}, tcp.Callbacks{}); err != ErrAddrInUse {
		t.Fatalf("duplicate 4-tuple = %v, want ErrAddrInUse", err)
	}
	// Mixed flags: a non-reuse dial from a reused port fails.
	if _, err := a.TCPDial(inet.EP("1.0.0.2", 82), DialOpts{LocalPort: 5000}, tcp.Callbacks{}); err != ErrAddrInUse {
		t.Fatalf("non-reuse bind on reused port = %v, want ErrAddrInUse", err)
	}
	n.Sched.RunFor(2 * time.Second)
}

func TestDuplicateListenerRefused(t *testing.T) {
	_, a, _ := twoHosts(t, BSDStyle, BSDStyle)
	if _, err := a.TCPListen(80, true, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.TCPListen(80, true, nil); err != ErrAddrInUse {
		t.Errorf("second listener = %v, want ErrAddrInUse", err)
	}
}

// simultaneousDial has A and B dial each other's exact endpoints at
// the same instant from bound ports, with listeners present — the
// §4.3/§4.4 situation hole punching creates.
func simultaneousDial(t *testing.T, flavorA, flavorB OSFlavor) (accA, accB, conA, conB *tcp.Conn, errA, errB error) {
	t.Helper()
	n, a, b := twoHosts(t, flavorA, flavorB)
	epA := inet.Endpoint{Addr: a.Addr(), Port: 4321}
	epB := inet.Endpoint{Addr: b.Addr(), Port: 4321}

	if _, err := a.TCPListen(4321, true, func(c *tcp.Conn) { accA = c }); err != nil {
		t.Fatal(err)
	}
	if _, err := b.TCPListen(4321, true, func(c *tcp.Conn) { accB = c }); err != nil {
		t.Fatal(err)
	}
	ca, err := a.TCPDial(epB, DialOpts{LocalPort: 4321, ReuseAddr: true}, tcp.Callbacks{
		Established: func(c *tcp.Conn) { conA = c },
		Error:       func(_ *tcp.Conn, e error) { errA = e },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.TCPDial(epA, DialOpts{LocalPort: 4321, ReuseAddr: true}, tcp.Callbacks{
		Established: func(c *tcp.Conn) { conB = c },
		Error:       func(_ *tcp.Conn, e error) { errB = e },
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = ca
	n.Sched.RunFor(5 * time.Second)
	return
}

func TestSimultaneousOpenBSDFlavor(t *testing.T) {
	// BSD behavior (§4.3 first bullet): the SYNs cross; each side's
	// connect() succeeds on the connecting socket; listeners see
	// nothing.
	accA, accB, conA, conB, errA, errB := simultaneousDial(t, BSDStyle, BSDStyle)
	if conA == nil || conB == nil {
		t.Fatalf("connects did not complete: a=%v b=%v errs a=%v b=%v", conA, conB, errA, errB)
	}
	if accA != nil || accB != nil {
		t.Errorf("listeners fired on BSD flavor: a=%v b=%v", accA, accB)
	}
	if conA.Accepted || conB.Accepted {
		t.Error("BSD conns should not be marked accepted")
	}
}

func TestSimultaneousOpenLinuxFlavor(t *testing.T) {
	// Linux/Windows behavior (§4.3 second bullet): each side's listen
	// socket claims the crossing SYN; accept() delivers the working
	// stream and connect() fails with address-in-use. The paper:
	// "as if this TCP stream had magically created itself".
	accA, accB, conA, conB, errA, errB := simultaneousDial(t, LinuxStyle, LinuxStyle)
	if accA == nil || accB == nil {
		t.Fatalf("accepts missing: a=%v b=%v", accA, accB)
	}
	if !accA.Accepted || !accB.Accepted {
		t.Error("accepted conns not flagged")
	}
	if conA != nil || conB != nil {
		t.Errorf("connect succeeded on Linux flavor: a=%v b=%v", conA, conB)
	}
	if !errors.Is(errA, tcp.ErrAddrInUse) || !errors.Is(errB, tcp.ErrAddrInUse) {
		t.Errorf("connect errors = %v / %v, want address-in-use", errA, errB)
	}
	if accA.State() != tcp.Established || accB.State() != tcp.Established {
		t.Errorf("accepted states: %v / %v", accA.State(), accB.State())
	}
}

func TestMixedFlavors(t *testing.T) {
	// One BSD host, one Linux host: both must still end up with a
	// working stream (connect-side on BSD, accept-side on Linux).
	accA, accB, conA, conB, _, _ := simultaneousDial(t, BSDStyle, LinuxStyle)
	aStream := conA
	if aStream == nil {
		aStream = accA
	}
	bStream := conB
	if bStream == nil {
		bStream = accB
	}
	if aStream == nil || bStream == nil {
		t.Fatal("mixed flavors failed to produce streams on both sides")
	}
}

func TestLinuxFlavorDataFlowsAfterAccept(t *testing.T) {
	// Data written on the BSD side must arrive at the Linux side's
	// accepted socket.
	n, a, b := twoHosts(t, BSDStyle, LinuxStyle)
	epA := inet.Endpoint{Addr: a.Addr(), Port: 4321}
	epB := inet.Endpoint{Addr: b.Addr(), Port: 4321}
	var got bytes.Buffer
	a.TCPListen(4321, true, nil)
	b.TCPListen(4321, true, func(c *tcp.Conn) {
		c.OnData(func(_ *tcp.Conn, p []byte) { got.Write(p) })
	})
	var aConn *tcp.Conn
	aConn, _ = a.TCPDial(epB, DialOpts{LocalPort: 4321, ReuseAddr: true}, tcp.Callbacks{
		Established: func(c *tcp.Conn) { c.Write([]byte("punched!")) },
	})
	b.TCPDial(epA, DialOpts{LocalPort: 4321, ReuseAddr: true}, tcp.Callbacks{})
	n.Sched.RunFor(5 * time.Second)
	_ = aConn
	if got.String() != "punched!" {
		t.Fatalf("linux side got %q", got.String())
	}
}

func TestEphemeralExhaustion(t *testing.T) {
	_, a, _ := twoHosts(t, BSDStyle, BSDStyle)
	// Exhaust the UDP ephemeral range.
	for i := 0; i < 16384; i++ {
		if _, err := a.UDPBind(0); err != nil {
			t.Fatalf("bind %d failed early: %v", i, err)
		}
	}
	if _, err := a.UDPBind(0); err != ErrNoPorts {
		t.Errorf("exhausted bind = %v, want ErrNoPorts", err)
	}
}

func TestDetachedHostErrors(t *testing.T) {
	n := sim.NewNetwork(1)
	h := New(n, "lonely", BSDStyle)
	if _, err := h.UDPBind(1); err != ErrNoRoute {
		t.Errorf("UDPBind = %v", err)
	}
	if _, err := h.TCPListen(1, false, nil); err != ErrNoRoute {
		t.Errorf("TCPListen = %v", err)
	}
	if _, err := h.TCPDial(inet.EP("1.2.3.4", 5), DialOpts{}, tcp.Callbacks{}); err != ErrNoRoute {
		t.Errorf("TCPDial = %v", err)
	}
	if h.Addr() != inet.Unspecified {
		t.Error("detached host has an address")
	}
}

func TestListenerCloseStopsAccepts(t *testing.T) {
	n, a, b := twoHosts(t, BSDStyle, BSDStyle)
	var accepted int
	l, _ := b.TCPListen(80, false, func(*tcp.Conn) { accepted++ })
	l.Close()
	var gotErr error
	a.TCPDial(inet.Endpoint{Addr: b.Addr(), Port: 80}, DialOpts{}, tcp.Callbacks{
		Error: func(_ *tcp.Conn, e error) { gotErr = e },
	})
	n.Sched.RunFor(time.Second)
	if accepted != 0 {
		t.Error("closed listener accepted")
	}
	if !errors.Is(gotErr, tcp.ErrReset) {
		t.Errorf("dial to closed listener = %v, want reset", gotErr)
	}
	// Port is free for a fresh listener.
	if _, err := b.TCPListen(80, false, nil); err != nil {
		t.Errorf("rebind after listener close: %v", err)
	}
}

func TestOSFlavorString(t *testing.T) {
	if BSDStyle.String() != "BSD" || LinuxStyle.String() != "Linux" {
		t.Error("flavor names wrong")
	}
}
