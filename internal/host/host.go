// Package host implements a simulated end host: one or more network
// interfaces, a UDP socket layer, and a TCP socket layer with the
// Berkeley-sockets port semantics that TCP hole punching depends on
// (§4.1 of the paper): by default one socket per local port, with
// SO_REUSEADDR allowing a listener and multiple outgoing connections
// to share a port.
//
// Hosts have a configurable OS flavor reproducing the two
// application-visible TCP hole punching behaviors of §4.3: BSD-style
// stacks complete the application's connect() when an incoming SYN
// matches an in-progress outbound session; Linux/Windows-style stacks
// prefer the listen socket, delivering a new socket via accept() and
// eventually failing the connect() with "address in use".
package host

import (
	"errors"
	"fmt"

	"natpunch/internal/inet"
	"natpunch/internal/sim"
	"natpunch/internal/tcp"
)

// OSFlavor selects the TCP demultiplexing behavior of §4.3.
type OSFlavor uint8

// OS flavors.
const (
	// BSDStyle: an incoming SYN whose session endpoints match an
	// in-progress connect() is associated with the connecting socket;
	// the connect succeeds and the listen socket sees nothing.
	BSDStyle OSFlavor = iota
	// LinuxStyle: the listen socket claims the incoming SYN, a new
	// socket is handed to accept(), and the overlapping connect()
	// fails with an "address in use" error.
	LinuxStyle
)

// String names the flavor.
func (f OSFlavor) String() string {
	if f == BSDStyle {
		return "BSD"
	}
	return "Linux"
}

// Socket-layer errors.
var (
	ErrAddrInUse   = errors.New("host: address already in use")
	ErrNoPorts     = errors.New("host: ephemeral ports exhausted")
	ErrSocketClose = errors.New("host: socket closed")
	ErrNoRoute     = errors.New("host: no interface attached")
)

// Host is a simulated end host.
type Host struct {
	name   string
	net    *sim.Network
	flavor OSFlavor
	ifcs   []*sim.Iface

	udpSocks  map[inet.Port]*UDPSocket
	tcpConns  map[inet.Session]*tcp.Conn
	listeners map[inet.Port]*TCPListener
	tcpBinds  map[inet.Port]*bindState

	nextEphemeral inet.Port

	// TCPConfig is applied to new TCP connections. Zero fields take
	// package tcp defaults.
	TCPConfig tcp.Config

	// SilentToClosedPorts suppresses RST / ICMP-port-unreachable
	// replies to traffic for which no socket exists. Punching clients
	// keep the default (false) since real hosts answer; tests use it
	// to model dropped-by-firewall endpoints.
	SilentToClosedPorts bool
}

// bindState tracks TCP port ownership for SO_REUSEADDR semantics.
type bindState struct {
	refs     int
	reuseAll bool // every binder set ReuseAddr
}

// New creates a host. The flavor matters only for TCP hole punching
// (§4.3); BSDStyle is the default used throughout the experiments
// unless a test exercises the Linux path.
func New(n *sim.Network, name string, flavor OSFlavor) *Host {
	return &Host{
		name:          name,
		net:           n,
		flavor:        flavor,
		udpSocks:      make(map[inet.Port]*UDPSocket),
		tcpConns:      make(map[inet.Session]*tcp.Conn),
		listeners:     make(map[inet.Port]*TCPListener),
		tcpBinds:      make(map[inet.Port]*bindState),
		nextEphemeral: 49152,
	}
}

// Name implements sim.Device.
func (h *Host) Name() string { return h.name }

// Flavor returns the host's OS flavor.
func (h *Host) Flavor() OSFlavor { return h.flavor }

// Network returns the owning network.
func (h *Host) Network() *sim.Network { return h.net }

// Sched returns the simulation scheduler, for timer convenience.
func (h *Host) Sched() *sim.Scheduler { return h.net.Sched }

// Attach connects the host to a segment at addr. The first attached
// interface becomes the default route.
func (h *Host) Attach(seg *sim.Segment, addr inet.Addr) *sim.Iface {
	ifc := seg.Attach(h, addr)
	h.ifcs = append(h.ifcs, ifc)
	return ifc
}

// Addr returns the host's primary address (first interface), or the
// unspecified address if detached.
func (h *Host) Addr() inet.Addr {
	if len(h.ifcs) == 0 {
		return inet.Unspecified
	}
	return h.ifcs[0].Addr()
}

// send transmits via the primary interface. Packets addressed to the
// host itself are looped back locally, as a real stack's loopback
// path would (NAT Check's hairpin probe on an un-NATed host relies on
// this).
func (h *Host) send(pkt *inet.Packet) {
	if len(h.ifcs) == 0 {
		return
	}
	if pkt.Dst.Addr == h.Addr() {
		h.Sched().After(0, func() { h.Receive(nil, pkt) })
		return
	}
	h.ifcs[0].Send(pkt)
}

// Receive implements sim.Device: transport demultiplexing.
func (h *Host) Receive(_ *sim.Iface, pkt *inet.Packet) {
	switch pkt.Proto {
	case inet.UDP:
		h.receiveUDP(pkt)
	case inet.TCP:
		h.receiveTCP(pkt)
	case inet.ICMP:
		h.receiveICMP(pkt)
	}
}

func (h *Host) receiveICMP(pkt *inet.Packet) {
	// Orig is the failed packet's session from our perspective
	// (Local = the endpoint a socket here used as source).
	switch pkt.OrigProto {
	case inet.TCP:
		if c, ok := h.tcpConns[pkt.Orig]; ok {
			c.DeliverICMP(pkt)
		}
	case inet.UDP:
		if s, ok := h.udpSocks[pkt.Orig.Local.Port]; ok && s.onError != nil {
			s.onError(pkt.Orig.Remote, errFromICMP(pkt.ICMP))
		}
	}
}

func errFromICMP(t inet.ICMPType) error {
	return fmt.Errorf("icmp: %s", t)
}

// allocEphemeral returns a free ephemeral port for the given check
// function. The counter wraps within [49152, 65535].
func (h *Host) allocEphemeral(inUse func(inet.Port) bool) (inet.Port, error) {
	for i := 0; i < 16384; i++ {
		p := h.nextEphemeral
		h.nextEphemeral++
		if h.nextEphemeral == 0 {
			h.nextEphemeral = 49152
		}
		if !inUse(p) {
			return p, nil
		}
	}
	return 0, ErrNoPorts
}
