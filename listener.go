package natpunch

import (
	"net"
	"sync"
)

// Listener delivers sessions initiated by peers (the forwarded
// connection request of §3.2 step 2 arrives without any local dial).
// It satisfies net.Listener; Accept returns *Conn values.
type Listener struct {
	d *Dialer

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Conn
	closed bool
}

var _ net.Listener = (*Listener)(nil)

func newListener(d *Dialer) *Listener {
	l := &Listener{d: d}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// enqueue hands an inbound Conn to Accept (engine context, or Listen
// draining the pre-listener backlog).
func (l *Listener) enqueue(c *Conn) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		// enqueue may run in engine context; Close re-enters the
		// engine via Invoke, so defer it to a fresh goroutine.
		go c.Close()
		return
	}
	l.queue = append(l.queue, c)
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Accept blocks until a peer establishes a session with this
// endpoint, returning it as a net.Conn (concretely a *Conn).
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.AcceptConn()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// AcceptConn is Accept returning the concrete type.
func (l *Listener) AcceptConn() (*Conn, error) {
	l.d.addWaiter()
	defer l.d.removeWaiter()
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if len(l.queue) > 0 {
			c := l.queue[0]
			l.queue = l.queue[1:]
			return c, nil
		}
		if l.closed {
			return nil, ErrClosed
		}
		l.cond.Wait()
	}
}

// Addr returns the endpoint's public address as observed by S.
func (l *Listener) Addr() net.Addr { return l.d.PublicAddr() }

// Close stops accepting. Sessions already queued are closed; the
// Dialer itself stays open and may Listen again.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	queued := l.queue
	l.queue = nil
	l.cond.Broadcast()
	l.mu.Unlock()

	for _, c := range queued {
		c.Close()
	}
	l.d.mu.Lock()
	if l.d.listener == l {
		l.d.listener = nil
	}
	l.d.mu.Unlock()
	return nil
}
